#include "storage/buffer_pool.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

// A store that fails reads on demand, for error-path coverage. Counters
// are atomic: the sharded pool issues reads from multiple threads.
class FlakyStore : public PageStore {
 public:
  Status ReadPage(PageId id, Page* out) override {
    reads.fetch_add(1, std::memory_order_relaxed);
    if (fail_reads.load(std::memory_order_relaxed)) {
      return Status::IoError("injected failure");
    }
    return mem.ReadPage(id, out);
  }
  Status WritePage(PageId id, const Page& page) override {
    return mem.WritePage(id, page);
  }
  Result<PageId> AllocatePage() override { return mem.AllocatePage(); }
  PageId page_count() const override { return mem.page_count(); }
  Status Sync() override { return Status::OK(); }

  MemPageStore mem;
  std::atomic<int> reads{0};
  std::atomic<bool> fail_reads{false};
};

Page Stamped(uint8_t v) {
  Page p;
  p.Zero();
  p.WriteU8(0, v);
  return p;
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (uint8_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(store_.AllocatePage().ok());
      XKS_ASSERT_OK(store_.WritePage(i, Stamped(i)));
    }
  }
  FlakyStore store_;
};

// The single-shard tests pin shards=1 so the global LRU order (and thus
// the exact hit/miss sequence) is deterministic, like the old pool.

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  {
    Result<PageRef> ref = pool.Fetch(3);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->page().ReadU8(0), 3);
  }
  EXPECT_EQ(pool.total_misses(), 1u);
  {
    Result<PageRef> ref = pool.Fetch(3);
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_EQ(pool.total_misses(), 1u);
  EXPECT_EQ(pool.total_hits(), 1u);
  EXPECT_EQ(store_.reads, 1);
}

TEST_F(BufferPoolTest, LruEvictsColdestUnpinned) {
  BufferPool pool(&store_, 2, /*shards=*/1);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }
  // Touch 0 so 1 is the LRU victim.
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(2); ASSERT_TRUE(r.ok()); }  // evicts 1
  EXPECT_EQ(pool.total_misses(), 3u);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }  // still resident
  EXPECT_EQ(pool.total_misses(), 3u);
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }  // was evicted
  EXPECT_EQ(pool.total_misses(), 4u);
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  BufferPool pool(&store_, 2, /*shards=*/1);
  Result<PageRef> pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(2); ASSERT_TRUE(r.ok()); }  // must evict 1, not 0
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.total_misses(), 3u);
  // The pinned page's bytes stayed valid throughout.
  EXPECT_EQ(pinned->page().ReadU8(0), 0);
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(&store_, 2, /*shards=*/1);
  Result<PageRef> a = pool.Fetch(0);
  Result<PageRef> b = pool.Fetch(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<PageRef> c = pool.Fetch(2);
  EXPECT_TRUE(c.status().IsInternal());
}

TEST_F(BufferPoolTest, StatsChargedPerFetch) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  QueryStats a;
  QueryStats b;
  { auto r = pool.Fetch(0, &a); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(0, &a); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(a.page_reads, 1u);
  EXPECT_EQ(a.page_hits, 1u);
  // A different query's stats are charged independently.
  { auto r = pool.Fetch(0, &b); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(b.page_reads, 0u);
  EXPECT_EQ(b.page_hits, 1u);
  // Fetches without a stats sink charge no one.
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(a.page_reads, 1u);
  EXPECT_EQ(b.page_reads, 0u);
}

TEST_F(BufferPoolTest, DropAllEmulatesColdCache) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.resident(), 1u);
  XKS_ASSERT_OK(pool.DropAll());
  EXPECT_EQ(pool.resident(), 0u);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.total_misses(), 2u);
}

TEST_F(BufferPoolTest, DropAllRefusesWhilePinned) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  Result<PageRef> pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  EXPECT_TRUE(pool.DropAll().IsInternal());
  pinned->Release();
  XKS_ASSERT_OK(pool.DropAll());
}

TEST_F(BufferPoolTest, WarmAllPrefetches) {
  BufferPool pool(&store_, 16, /*shards=*/1);
  XKS_ASSERT_OK(pool.WarmAll());
  EXPECT_EQ(pool.resident(), 8u);
  const uint64_t misses = pool.total_misses();
  { auto r = pool.Fetch(5); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.total_misses(), misses);  // hot
}

TEST_F(BufferPoolTest, WarmAllRespectsCapacity) {
  BufferPool pool(&store_, 3, /*shards=*/1);
  XKS_ASSERT_OK(pool.WarmAll());
  EXPECT_LE(pool.resident(), 3u);
}

TEST_F(BufferPoolTest, ReadFailurePropagates) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  store_.fail_reads = true;
  EXPECT_TRUE(pool.Fetch(0).status().IsIoError());
  store_.fail_reads = false;
  EXPECT_TRUE(pool.Fetch(0).ok());
}

TEST_F(BufferPoolTest, DirtyPagesReachStoreOnFlush) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  {
    Result<MutPageRef> ref = pool.FetchMut(2);
    ASSERT_TRUE(ref.ok());
    ref->page().WriteU8(0, 0xEE);
  }
  // Not yet in the store...
  Page raw;
  XKS_ASSERT_OK(store_.mem.ReadPage(2, &raw));
  EXPECT_EQ(raw.ReadU8(0), 2);
  XKS_ASSERT_OK(pool.FlushAll());
  XKS_ASSERT_OK(store_.mem.ReadPage(2, &raw));
  EXPECT_EQ(raw.ReadU8(0), 0xEE);
}

TEST_F(BufferPoolTest, DirtyPagesWrittenBackOnEviction) {
  BufferPool pool(&store_, 2, /*shards=*/1);
  {
    Result<MutPageRef> ref = pool.FetchMut(0);
    ASSERT_TRUE(ref.ok());
    ref->page().WriteU8(0, 0xAA);
  }
  // Two more fetches force page 0 out.
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(2); ASSERT_TRUE(r.ok()); }
  Page raw;
  XKS_ASSERT_OK(store_.mem.ReadPage(0, &raw));
  EXPECT_EQ(raw.ReadU8(0), 0xAA);
  // Re-reading through the pool sees the written value.
  Result<PageRef> back = pool.Fetch(0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->page().ReadU8(0), 0xAA);
}

TEST_F(BufferPoolTest, DropAllFlushesDirtyFrames) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  {
    Result<MutPageRef> ref = pool.FetchMut(5);
    ASSERT_TRUE(ref.ok());
    ref->page().WriteU8(0, 0x55);
  }
  XKS_ASSERT_OK(pool.DropAll());
  Page raw;
  XKS_ASSERT_OK(store_.mem.ReadPage(5, &raw));
  EXPECT_EQ(raw.ReadU8(0), 0x55);
}

TEST_F(BufferPoolTest, NewPageAllocatesZeroedAndCached) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  PageId fresh;
  {
    Result<MutPageRef> ref = pool.NewPage();
    ASSERT_TRUE(ref.ok());
    fresh = ref->id();
    EXPECT_EQ(ref->page().ReadU8(0), 0);
    ref->page().WriteU8(0, 0x77);
  }
  EXPECT_EQ(fresh, 8u);  // after the 8 pre-allocated pages
  Result<PageRef> back = pool.Fetch(fresh);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->page().ReadU8(0), 0x77);
}

TEST_F(BufferPoolTest, MoveOnlyPageRefTransfersPin) {
  BufferPool pool(&store_, 2, /*shards=*/1);
  Result<PageRef> a = pool.Fetch(0);
  ASSERT_TRUE(a.ok());
  PageRef moved = std::move(*a);
  EXPECT_TRUE(moved.valid());
  moved.Release();
  // Pin released exactly once: the pool can now be dropped.
  XKS_ASSERT_OK(pool.DropAll());
}

TEST_F(BufferPoolTest, ReadaheadChargesSeparatelyFromDemandMisses) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  QueryStats stats;
  pool.Readahead(0, 3, &stats);
  EXPECT_EQ(stats.readahead_reads, 3u);
  EXPECT_EQ(pool.total_readaheads(), 3u);
  EXPECT_EQ(pool.resident(), 3u);
  // Speculative loads are not demand misses...
  EXPECT_EQ(stats.page_reads, 0u);
  EXPECT_EQ(pool.total_misses(), 0u);
  // ...and a later demand fetch of a readahead page is a hit.
  { auto r = pool.Fetch(1, &stats); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(stats.page_hits, 1u);
  EXPECT_EQ(stats.page_reads, 0u);
}

TEST_F(BufferPoolTest, ReadaheadEvictsUnpinnedButSkipsPinnedPages) {
  BufferPool pool(&store_, 2, /*shards=*/1);
  QueryStats stats;
  // Fill the pool with two pinned pages: readahead finds nothing
  // evictable and skips instead of erroring.
  Result<PageRef> pin0 = pool.Fetch(0);
  ASSERT_TRUE(pin0.ok());
  {
    Result<PageRef> pin1 = pool.Fetch(1);
    ASSERT_TRUE(pin1.ok());
    ASSERT_EQ(pool.resident(), 2u);
    pool.Readahead(2, 1, &stats);
    EXPECT_EQ(stats.readahead_reads, 0u);
    EXPECT_EQ(pool.resident(), 2u);
  }
  // Page 1 unpinned: a full pool now prefetches by evicting it, and
  // the pinned page is untouched.
  pool.Readahead(2, 1, &stats);
  EXPECT_EQ(stats.readahead_reads, 1u);
  EXPECT_EQ(pool.resident(), 2u);
  EXPECT_EQ(pin0->page().ReadU8(0), 0u);
  // The prefetched page is resident: a demand fetch of it is a hit.
  { auto r = pool.Fetch(2, &stats); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(stats.page_hits, 1u);
  EXPECT_EQ(stats.page_reads, 0u);
}

TEST_F(BufferPoolTest, ReadaheadClampsToStoreSize) {
  BufferPool pool(&store_, 16, /*shards=*/1);
  QueryStats stats;
  pool.Readahead(6, 100, &stats);  // store has 8 pages
  EXPECT_EQ(stats.readahead_reads, 2u);
  pool.Readahead(50, 4, &stats);  // wholly out of range: no-op
  EXPECT_EQ(stats.readahead_reads, 2u);
}

// --- Sharded / multi-threaded behaviour. The suite name contains
// "Concurrency" so the tsan preset's test filter runs these under tsan.

using BufferPoolConcurrencyTest = BufferPoolTest;

TEST_F(BufferPoolConcurrencyTest, ShardCountClampedToCapacity) {
  // More shards than frames: clamped so every shard owns >= 1 frame.
  BufferPool small(&store_, 2, 8);
  EXPECT_EQ(small.shards(), 2u);
  EXPECT_EQ(small.capacity(), 2u);
  // Capacity equal to the shard count: one frame per shard.
  BufferPool equal(&store_, 4, 4);
  EXPECT_EQ(equal.shards(), 4u);
  // Capacity larger than the shard count.
  BufferPool large(&store_, 16, 4);
  EXPECT_EQ(large.shards(), 4u);
  EXPECT_EQ(large.capacity(), 16u);
  // Auto (shards=0) picks at least one shard, never more than capacity.
  BufferPool tiny(&store_, 1);
  EXPECT_EQ(tiny.shards(), 1u);
  // Auto keeps >= 8 frames per shard so concurrent pins do not exhaust
  // a tiny shard, and tops out at 16 shards for big pools.
  BufferPool small_auto(&store_, 32);
  EXPECT_EQ(small_auto.shards(), 4u);
  BufferPool big_auto(&store_, 8192);
  EXPECT_EQ(big_auto.shards(), 16u);
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentSamePageMissReadsOnce) {
  BufferPool pool(&store_, 8, 4);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Result<PageRef> ref = pool.Fetch(3);
      if (!ref.ok() || ref->page().ReadU8(0) != 3) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures, 0);
  // The loading-frame protocol coalesces concurrent misses of one page
  // into a single store read.
  EXPECT_EQ(store_.reads, 1);
  EXPECT_EQ(pool.total_misses(), 1u);
  EXPECT_EQ(pool.total_hits(), static_cast<uint64_t>(kThreads - 1));
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentReadersSeeCorrectBytes) {
  // Pool capacity (and shard count) chosen so shards see different
  // regimes: 3 frames across 3 shards, 8 distinct pages → constant
  // eviction on every shard.
  BufferPool pool(&store_, 3, 3);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const PageId id = static_cast<PageId>((t * 7 + i) % 8);
        QueryStats stats;
        Result<PageRef> ref = pool.Fetch(id, &stats);
        if (!ref.ok() || ref->page().ReadU8(0) != id) {
          failures.fetch_add(1);
          return;
        }
        if (stats.page_reads + stats.page_hits != 1) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures, 0);
  // Every fetch was charged exactly once globally too.
  EXPECT_EQ(pool.total_hits() + pool.total_misses(),
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  // All pins were released: the whole cache can be dropped.
  XKS_ASSERT_OK(pool.DropAll());
  EXPECT_EQ(pool.resident(), 0u);
}

TEST_F(BufferPoolConcurrencyTest, WarmAllSafeUnderConcurrentReaders) {
  BufferPool pool(&store_, 16, 4);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const PageId id = static_cast<PageId>((t + i++) % 8);
        Result<PageRef> ref = pool.Fetch(id);
        if (!ref.ok() || ref->page().ReadU8(0) != id) failures.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    XKS_ASSERT_OK(pool.WarmAll());
  }
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(pool.resident(), 8u);  // everything fits, all hot
  const uint64_t misses = pool.total_misses();
  { auto r = pool.Fetch(7); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.total_misses(), misses);
}

TEST_F(BufferPoolConcurrencyTest, DropAllUnderConcurrentReaders) {
  BufferPool pool(&store_, 8, 4);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const PageId id = static_cast<PageId>((t * 3 + i++) % 8);
        Result<PageRef> ref = pool.Fetch(id);
        if (!ref.ok() || ref->page().ReadU8(0) != id) failures.fetch_add(1);
        // The ref drops here, so pins are transient: DropAll may land in
        // a pinned window (Internal) or a gap (OK); both are valid.
      }
    });
  }
  int dropped = 0;
  for (int round = 0; round < 200; ++round) {
    const Status st = pool.DropAll();
    if (st.ok()) {
      ++dropped;
    } else {
      ASSERT_TRUE(st.IsInternal()) << st.ToString();
    }
  }
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures, 0);
  // With no readers left every drop must succeed and empty the pool.
  XKS_ASSERT_OK(pool.DropAll());
  EXPECT_EQ(pool.resident(), 0u);
}

TEST_F(BufferPoolConcurrencyTest, DropAllFailsWithPinnedPageThenRecovers) {
  BufferPool pool(&store_, 4, 4);
  Result<PageRef> pinned = pool.Fetch(2);
  ASSERT_TRUE(pinned.ok());
  std::thread dropper([&] {
    // From another thread, the pinned page must still block the drop.
    EXPECT_TRUE(pool.DropAll().IsInternal());
  });
  dropper.join();
  pinned->Release();
  XKS_ASSERT_OK(pool.DropAll());
  EXPECT_EQ(pool.resident(), 0u);
}

// --- FetchMany: the batched (vectored) fetch path.

TEST_F(BufferPoolTest, FetchManyMixesHitsAndMisses) {
  BufferPool pool(&store_, 6, /*shards=*/1);
  { auto r = pool.Fetch(2); ASSERT_TRUE(r.ok()); }  // make 2 resident
  store_.reads = 0;
  QueryStats stats;
  std::vector<PageId> ids = {5, 2, 0};  // unsorted on purpose
  Result<std::vector<PageRef>> refs = pool.FetchMany(ids, &stats);
  ASSERT_TRUE(refs.ok());
  ASSERT_EQ(refs->size(), 3u);
  // out[i] corresponds to ids[i], whatever internal order the reads used.
  EXPECT_EQ((*refs)[0].page().ReadU8(0), 5);
  EXPECT_EQ((*refs)[1].page().ReadU8(0), 2);
  EXPECT_EQ((*refs)[2].page().ReadU8(0), 0);
  EXPECT_EQ(stats.page_hits, 1u);
  EXPECT_EQ(stats.page_reads, 2u);
  EXPECT_EQ(store_.reads, 2);
  refs->clear();
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
}

TEST_F(BufferPoolTest, FetchManyDuplicateIdsEachHoldAPin) {
  BufferPool pool(&store_, 4, /*shards=*/1);
  std::vector<PageId> ids = {3, 3, 1};
  Result<std::vector<PageRef>> refs = pool.FetchMany(ids, nullptr);
  ASSERT_TRUE(refs.ok());
  ASSERT_EQ(refs->size(), 3u);
  EXPECT_EQ(pool.DebugTotalPins(), 3u);
  // Releasing one duplicate leaves the other's pin intact.
  (*refs)[0].Release();
  EXPECT_EQ(pool.DebugTotalPins(), 2u);
  EXPECT_EQ((*refs)[1].page().ReadU8(0), 3);
  refs->clear();
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
}

TEST_F(BufferPoolTest, FetchManyReadFailureReleasesEveryPin) {
  BufferPool pool(&store_, 6, /*shards=*/1);
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }  // a hit the batch pins
  store_.fail_reads = true;
  QueryStats stats;
  std::vector<PageId> ids = {1, 4, 6};
  Result<std::vector<PageRef>> refs = pool.FetchMany(ids, &stats);
  ASSERT_FALSE(refs.ok());
  EXPECT_TRUE(refs.status().IsIoError()) << refs.status().ToString();
  EXPECT_EQ(stats.io_errors, 1u);
  // The hit's pin AND the staked placeholders are all gone.
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
  store_.fail_reads = false;
  // Placeholders were fully retired, so a clean retry succeeds.
  Result<std::vector<PageRef>> retry = pool.FetchMany(ids, nullptr);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ((*retry)[2].page().ReadU8(0), 6);
}

TEST_F(BufferPoolTest, FetchManyBeyondCapacityFailsWithoutLeakingPins) {
  // More unique pages than frames: the batch's own pins make the tail
  // unsatisfiable. The call reports exhaustion (Internal, like Fetch on
  // an all-pinned pool) and releases everything it held.
  BufferPool pool(&store_, 2, /*shards=*/1);
  std::vector<PageId> ids = {0, 1, 2, 3};
  Result<std::vector<PageRef>> refs = pool.FetchMany(ids, nullptr);
  ASSERT_FALSE(refs.ok());
  EXPECT_TRUE(refs.status().IsInternal()) << refs.status().ToString();
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
  // The pool stays usable.
  Result<PageRef> after = pool.Fetch(3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->page().ReadU8(0), 3);
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentFetchManyAndFetches) {
  BufferPool pool(&store_, 6, 3);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          std::vector<PageId> ids = {static_cast<PageId>(i % 8),
                                     static_cast<PageId>((i + 3) % 8)};
          Result<std::vector<PageRef>> refs = pool.FetchMany(ids, nullptr);
          // Transient exhaustion under cross-batch pin pressure is legal;
          // wrong bytes never are.
          if (refs.ok()) {
            for (size_t j = 0; j < refs->size(); ++j) {
              if ((*refs)[j].page().ReadU8(0) != ids[j]) failures.fetch_add(1);
            }
          }
        } else {
          const PageId id = static_cast<PageId>((t + i) % 8);
          Result<PageRef> ref = pool.Fetch(id);
          if (!ref.ok() || ref->page().ReadU8(0) != id) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
  XKS_ASSERT_OK(pool.DropAll());
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentReadaheadAndFetches) {
  BufferPool pool(&store_, 6, 3);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          QueryStats stats;
          pool.Readahead(static_cast<PageId>(i % 8), 3, &stats);
        } else {
          const PageId id = static_cast<PageId>((t + i) % 8);
          Result<PageRef> ref = pool.Fetch(id);
          if (!ref.ok() || ref->page().ReadU8(0) != id) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures, 0);
  XKS_ASSERT_OK(pool.DropAll());
}

}  // namespace
}  // namespace xksearch
