#include "shard/sharded_collection.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "shard/router.h"
#include "shard/scatter_gather.h"
#include "shard/term_filter.h"
#include "storage/fault_injection.h"
#include "test_util.h"

namespace xksearch {
namespace shard {
namespace {

using testing_util::Id;
using testing_util::Strings;

// Four small documents with partially disjoint vocabularies, so routing
// has shards to prune and answers to attribute.
const char* kDocs[] = {
    "<papers><paper><title>keyword search</title><author>xu</author>"
    "</paper><paper><title>slca algorithms</title><author>xu</author>"
    "</paper></papers>",
    "<books><book><title>keyword indexing</title><author>chen</author>"
    "</book></books>",
    "<notes><note>dewey encoding</note><note>bptree layout</note>"
    "<note>keyword search notes</note></notes>",
    "<memos><memo>standup topics</memo></memos>",
};

std::unique_ptr<ShardedCollection> MakeCollection(
    size_t shards, ShardedCollectionOptions options = {}) {
  options.shards = shards;
  ShardedCollection::Builder builder(std::move(options));
  for (size_t d = 0; d < std::size(kDocs); ++d) {
    XKS_EXPECT_OK(builder.AddXml("doc" + std::to_string(d), kDocs[d]));
  }
  Result<std::unique_ptr<ShardedCollection>> built =
      std::move(builder).Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return built.ok() ? built.MoveValueUnsafe() : nullptr;
}

// The union of per-document engine answers, re-based to collection
// coordinates — the sharding layer's ground truth.
std::vector<DeweyId> PerDocUnion(const std::vector<std::string>& keywords,
                                 const SearchOptions& options = {}) {
  std::vector<DeweyId> all;
  for (size_t d = 0; d < std::size(kDocs); ++d) {
    Result<std::unique_ptr<XKSearch>> engine = XKSearch::BuildFromXml(kDocs[d]);
    EXPECT_TRUE(engine.ok());
    Result<SearchResult> r = (*engine)->Search(keywords, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    for (const DeweyId& id : r->nodes) {
      std::vector<uint32_t> c;
      c.push_back(0);
      c.push_back(static_cast<uint32_t>(d));
      for (size_t i = 1; i < id.depth(); ++i) c.push_back(id.component(i));
      all.push_back(DeweyId(std::move(c)));
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<DeweyId> Sorted(std::vector<DeweyId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(BalancedPartitionTest, SpreadsWeightAndIsDeterministic) {
  const std::vector<uint64_t> weights = {100, 10, 10, 10, 10, 60, 50};
  const std::vector<uint32_t> a = BalancedPartition(weights, 3);
  const std::vector<uint32_t> b = BalancedPartition(weights, 3);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), weights.size());
  std::vector<uint64_t> load(3, 0);
  for (size_t i = 0; i < weights.size(); ++i) {
    ASSERT_LT(a[i], 3u);
    load[a[i]] += weights[i];
  }
  // LPT on these weights (total 250) keeps every shard within 2x of the
  // ideal 83: the 100 item sits alone-ish, the rest balances out.
  for (const uint64_t l : load) {
    EXPECT_GT(l, 0u);
    EXPECT_LE(l, 120u);
  }
}

TEST(BalancedPartitionTest, SingleShardAndEmptyInput) {
  EXPECT_EQ(BalancedPartition({5, 5, 5}, 1),
            (std::vector<uint32_t>{0, 0, 0}));
  EXPECT_TRUE(BalancedPartition({}, 4).empty());
}

TEST(TermFilterTest, NoFalseNegatives) {
  std::vector<std::string> terms;
  for (int i = 0; i < 500; ++i) terms.push_back("term" + std::to_string(i));
  const TermFilter filter = TermFilter::Build(terms);
  for (const std::string& t : terms) {
    EXPECT_TRUE(filter.MayContain(t)) << t;
  }
}

TEST(TermFilterTest, FalsePositiveRateIsLow) {
  std::vector<std::string> terms;
  for (int i = 0; i < 1000; ++i) terms.push_back("in" + std::to_string(i));
  const TermFilter filter = TermFilter::Build(terms, /*bits_per_term=*/10);
  int false_positives = 0;
  for (int i = 0; i < 1000; ++i) {
    if (filter.MayContain("out" + std::to_string(i))) ++false_positives;
  }
  // ~1% expected at 10 bits/term; 5% is a generous determinism-safe bound.
  EXPECT_LT(false_positives, 50);
}

TEST(TermFilterTest, EmptyFilterContainsNothing) {
  const TermFilter filter = TermFilter::Build({});
  EXPECT_FALSE(filter.MayContain("anything"));
}

TEST(ShardedCollectionTest, BuilderRejectsDuplicatesAndBadInput) {
  ShardedCollectionOptions options;
  options.shards = 2;
  ShardedCollection::Builder builder(options);
  XKS_ASSERT_OK(builder.AddXml("a", "<r>x</r>"));
  EXPECT_TRUE(builder.AddXml("a", "<r>y</r>").IsInvalidArgument());
  EXPECT_TRUE(builder.AddXml("bad", "<r>").IsParseError());
  EXPECT_TRUE(builder.Add("empty", Document()).IsInvalidArgument());

  ShardedCollectionOptions zero;
  zero.shards = 0;
  ShardedCollection::Builder bad(zero);
  Result<std::unique_ptr<ShardedCollection>> built = std::move(bad).Build();
  EXPECT_TRUE(built.status().IsInvalidArgument());
}

TEST(ShardedCollectionTest, MatchesPerDocumentUnionAtEveryShardCount) {
  const std::vector<std::vector<std::string>> queries = {
      {"keyword"}, {"keyword", "search"}, {"xu"}, {"dewey"}, {"nosuchword"},
  };
  for (const size_t n : {1u, 2u, 3u, 4u, 7u}) {
    std::unique_ptr<ShardedCollection> collection = MakeCollection(n);
    ASSERT_NE(collection, nullptr);
    EXPECT_EQ(collection->shard_count(), n);
    EXPECT_EQ(collection->document_count(), std::size(kDocs));
    for (const std::vector<std::string>& q : queries) {
      Result<ShardedResult> got = collection->Search(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(Strings(Sorted(got->result.nodes)), Strings(PerDocUnion(q)))
          << "shards=" << n;
    }
  }
}

TEST(ShardedCollectionTest, ResultsAreMergedInDocumentOrder) {
  std::unique_ptr<ShardedCollection> collection = MakeCollection(3);
  ASSERT_NE(collection, nullptr);
  Result<ShardedResult> got = collection->Search({"keyword"});
  ASSERT_TRUE(got.ok());
  ASSERT_GE(got->result.nodes.size(), 2u);
  for (size_t i = 1; i < got->result.nodes.size(); ++i) {
    EXPECT_LT(got->result.nodes[i - 1].Compare(got->result.nodes[i]), 0);
  }
}

TEST(ShardedCollectionTest, ResolveAttributesAnswersToDocuments) {
  std::unique_ptr<ShardedCollection> collection = MakeCollection(2);
  ASSERT_NE(collection, nullptr);
  // "dewey" lives only in doc2.
  Result<ShardedResult> got = collection->Search({"dewey"});
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->result.nodes.size(), 1u);
  Result<ShardedCollection::Resolved> where =
      collection->Resolve(got->result.nodes[0]);
  ASSERT_TRUE(where.ok()) << where.status().ToString();
  EXPECT_EQ(where->document, "doc2");
  EXPECT_EQ(where->local.component(0), 0u);

  EXPECT_TRUE(collection->Resolve(Id("0")).status().IsInvalidArgument());
  EXPECT_TRUE(collection->Resolve(Id("0.99.1")).status().IsNotFound());
}

TEST(ShardedCollectionTest, RouterPrunesKeywordAbsentShards) {
  // With one shard per document, "standup" (only in doc3) must execute
  // exactly one shard and prune the rest.
  std::unique_ptr<ShardedCollection> collection =
      MakeCollection(std::size(kDocs));
  ASSERT_NE(collection, nullptr);
  Result<ShardedResult> got = collection->Search({"standup"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->result.nodes.size(), 1u);
  EXPECT_EQ(got->executed_shards(), 1u);
  EXPECT_EQ(got->pruned_shards(), std::size(kDocs) - 1);
  for (const ShardQueryStats& s : got->shards) {
    if (s.pruned) {
      EXPECT_EQ(s.results, 0u);
      EXPECT_EQ(s.stats.match_ops.load(), 0u);
    }
  }
  // A query whose keywords never co-occur in one document prunes every
  // shard at per-document granularity: no single document can answer it.
  Result<ShardedResult> cross = collection->Search({"standup", "dewey"});
  ASSERT_TRUE(cross.ok());
  EXPECT_TRUE(cross->result.nodes.empty());
  EXPECT_EQ(cross->executed_shards(), 0u);

  // The cumulative counters saw both queries.
  const std::vector<ShardCountersSnapshot> counters =
      collection->CountersSnapshot();
  uint64_t executed = 0;
  uint64_t pruned = 0;
  for (const ShardCountersSnapshot& c : counters) {
    executed += c.executed;
    pruned += c.pruned;
  }
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(pruned, 2 * std::size(kDocs) - 1);
}

TEST(ShardedCollectionTest, DisabledRouterScattersEverywhere) {
  ShardedCollectionOptions options;
  options.router.enabled = false;
  std::unique_ptr<ShardedCollection> collection =
      MakeCollection(std::size(kDocs), std::move(options));
  ASSERT_NE(collection, nullptr);
  Result<ShardedResult> got = collection->Search({"standup"});
  ASSERT_TRUE(got.ok());
  // Same answer, but every (non-empty) shard executed.
  EXPECT_EQ(got->result.nodes.size(), 1u);
  EXPECT_EQ(got->executed_shards(), std::size(kDocs));
}

TEST(ShardedCollectionTest, EmptyShardsWhenMoreShardsThanDocuments) {
  std::unique_ptr<ShardedCollection> collection = MakeCollection(9);
  ASSERT_NE(collection, nullptr);
  size_t with_engine = 0;
  for (uint32_t s = 0; s < collection->shard_count(); ++s) {
    if (collection->shard_engine(s) != nullptr) {
      ++with_engine;
      EXPECT_FALSE(collection->shard_documents(s).empty());
    } else {
      EXPECT_TRUE(collection->shard_documents(s).empty());
    }
  }
  EXPECT_EQ(with_engine, std::size(kDocs));
  Result<ShardedResult> got = collection->Search({"keyword"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Strings(Sorted(got->result.nodes)),
            Strings(PerDocUnion({"keyword"})));
}

TEST(ShardedCollectionTest, MirrorsEngineNormalizationContract) {
  std::unique_ptr<ShardedCollection> collection = MakeCollection(2);
  ASSERT_NE(collection, nullptr);
  EXPECT_TRUE(collection->Search({}).status().IsInvalidArgument());
  EXPECT_TRUE(collection->Search({"..."}).status().IsInvalidArgument());
  // Case folding matches the engine tokenizer.
  Result<ShardedResult> upper = collection->Search({"KEYWORD"});
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(Strings(Sorted(upper->result.nodes)),
            Strings(PerDocUnion({"keyword"})));
}

TEST(ShardedCollectionTest, FrequencyAggregatesAcrossShards) {
  std::unique_ptr<ShardedCollection> collection = MakeCollection(3);
  ASSERT_NE(collection, nullptr);
  EXPECT_EQ(collection->Frequency("keyword"), 3u);
  EXPECT_EQ(collection->Frequency("xu"), 2u);
  EXPECT_EQ(collection->Frequency("nosuchword"), 0u);
}

TEST(ShardedCollectionTest, ElcaAndAllLcaSemanticsMatchPerDocUnion) {
  std::unique_ptr<ShardedCollection> collection = MakeCollection(3);
  ASSERT_NE(collection, nullptr);
  for (const Semantics semantics : {Semantics::kElca, Semantics::kAllLca}) {
    SearchOptions so;
    so.semantics = semantics;
    Result<ShardedResult> got = collection->Search({"keyword", "search"}, so);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Strings(Sorted(got->result.nodes)),
              Strings(PerDocUnion({"keyword", "search"}, so)));
  }
}

TEST(ShardedCollectionTest, StatsAggregationIdentity) {
  std::unique_ptr<ShardedCollection> collection = MakeCollection(3);
  ASSERT_NE(collection, nullptr);
  Result<ShardedResult> got = collection->Search({"keyword", "search"});
  ASSERT_TRUE(got.ok());
  QueryStats sum;
  uint64_t contributed = 0;
  for (const ShardQueryStats& s : got->shards) {
    sum += s.stats;
    contributed += s.results;
  }
  EXPECT_EQ(sum.match_ops.load(), got->result.stats.match_ops.load());
  EXPECT_EQ(sum.postings_read.load(), got->result.stats.postings_read.load());
  EXPECT_EQ(sum.dewey_comparisons.load(),
            got->result.stats.dewey_comparisons.load());
  EXPECT_EQ(contributed, got->result.nodes.size());
}

TEST(ScatterGatherTest, ParallelMatchesSequential) {
  for (const size_t n : {1u, 3u, 7u}) {
    std::unique_ptr<ShardedCollection> collection = MakeCollection(n);
    ASSERT_NE(collection, nullptr);
    ScatterGatherOptions sgo;
    sgo.workers = 4;
    ScatterGatherExecutor executor(collection.get(), sgo);
    const std::vector<std::vector<std::string>> queries = {
        {"keyword"}, {"keyword", "search"}, {"xu"}, {"nosuchword"},
    };
    for (const std::vector<std::string>& q : queries) {
      Result<ShardedResult> seq = collection->Search(q);
      Result<ShardedResult> par = executor.Search(q);
      ASSERT_TRUE(seq.ok());
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_EQ(Strings(seq->result.nodes), Strings(par->result.nodes));
      EXPECT_EQ(seq->result.stats.match_ops.load(),
                par->result.stats.match_ops.load());
      EXPECT_EQ(seq->executed_shards(), par->executed_shards());
    }
    // Error contract parity too.
    EXPECT_TRUE(executor.Search({}).status().IsInvalidArgument());
  }
}

class ShardedDiskTest : public ::testing::Test {
 protected:
  void Build(size_t shards) {
    ShardedCollectionOptions options;
    options.shards = shards;
    options.build.build_disk_index = true;
    options.build.disk.in_memory = true;
    options.build.disk.il_pool_pages = 4;
    options.build.disk.scan_pool_pages = 4;
    options.store_decorator = [this](std::unique_ptr<PageStore> inner,
                                     size_t shard, std::string_view /*name*/) {
      auto wrapped =
          std::make_unique<FaultInjectingPageStore>(std::move(inner), 7);
      wrappers_.resize(std::max(wrappers_.size(), shard + 1));
      wrappers_[shard].push_back(wrapped.get());
      return std::unique_ptr<PageStore>(std::move(wrapped));
    };
    ShardedCollection::Builder builder(std::move(options));
    for (size_t d = 0; d < std::size(kDocs); ++d) {
      XKS_ASSERT_OK(builder.AddXml("doc" + std::to_string(d), kDocs[d]));
    }
    Result<std::unique_ptr<ShardedCollection>> built =
        std::move(builder).Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    collection_ = built.MoveValueUnsafe();
  }

  void ExpectZeroPins() {
    for (uint32_t s = 0; s < collection_->shard_count(); ++s) {
      const XKSearch* engine = collection_->shard_engine(s);
      if (engine == nullptr || engine->disk_index() == nullptr) continue;
      EXPECT_EQ(engine->disk_index()->il_pool()->DebugTotalPins(), 0u)
          << "shard " << s;
      EXPECT_EQ(engine->disk_index()->scan_pool()->DebugTotalPins(), 0u)
          << "shard " << s;
    }
  }

  std::unique_ptr<ShardedCollection> collection_;
  std::vector<std::vector<FaultInjectingPageStore*>> wrappers_;
};

TEST_F(ShardedDiskTest, DiskPathMatchesPerDocUnion) {
  Build(3);
  SearchOptions so;
  so.use_disk_index = true;
  Result<ShardedResult> got = collection_->Search({"keyword", "search"}, so);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Strings(Sorted(got->result.nodes)),
            Strings(PerDocUnion({"keyword", "search"})));
  EXPECT_GT(got->result.stats.page_reads.load() +
                got->result.stats.page_hits.load(),
            0u);
}

TEST_F(ShardedDiskTest, OneFaultedShardFailsTheQueryCleanlyAndRecovers) {
  Build(std::size(kDocs));
  SearchOptions so;
  so.use_disk_index = true;
  // Find the shard holding doc0 ("xu" queries route only there and to
  // doc1's shard... "keyword" spans doc0/1/2's shards) — simplest: fault
  // the shard of doc 0 and query a keyword that must touch it.
  const uint32_t victim = [&] {
    for (uint32_t s = 0; s < collection_->shard_count(); ++s) {
      const std::vector<uint32_t>& docs = collection_->shard_documents(s);
      if (std::find(docs.begin(), docs.end(), 0u) != docs.end()) return s;
    }
    return uint32_t{0};
  }();
  ASSERT_LT(victim, wrappers_.size());
  ASSERT_FALSE(wrappers_[victim].empty());
  // Cold pools on the victim, so the shard query must actually read
  // through the (failing) store instead of riding cached pages.
  XKS_ASSERT_OK(collection_->shard_engine(victim)->disk_index()->DropCaches());
  for (FaultInjectingPageStore* w : wrappers_[victim]) {
    w->FailReadsWithProbability(1.0, FaultRule::kForever);
    w->Arm();
  }
  Result<ShardedResult> got = collection_->Search({"keyword", "search"}, so);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIoError()) << got.status().ToString();
  ExpectZeroPins();

  // Parallel executor: same clean failure, still no leaked pins.
  ScatterGatherExecutor executor(collection_.get(), {});
  Result<ShardedResult> par = executor.Search({"keyword", "search"}, so);
  ASSERT_FALSE(par.ok());
  EXPECT_TRUE(par.status().IsIoError()) << par.status().ToString();
  ExpectZeroPins();

  // A query routed away from the faulted shard still succeeds: faults
  // stay contained to the shard that owns the failing store.
  Result<ShardedResult> routed = collection_->Search({"standup"}, so);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed->result.nodes.size(), 1u);

  for (FaultInjectingPageStore* w : wrappers_[victim]) {
    w->Disarm();
    w->ClearFaults();
  }
  Result<ShardedResult> recovered =
      collection_->Search({"keyword", "search"}, so);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Strings(Sorted(recovered->result.nodes)),
            Strings(PerDocUnion({"keyword", "search"})));
  ExpectZeroPins();
}

}  // namespace
}  // namespace shard
}  // namespace xksearch
