#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/random_tree.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/all_lca.h"
#include "slca/brute_force.h"
#include "slca/elca.h"
#include "slca/slca.h"
#include "storage/disk_index.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Strings;

struct PropertyCase {
  uint64_t seed;
  size_t node_count;
  size_t vocab;
  size_t query_size;
};

class SlcaPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.node_count) + "_v" +
         std::to_string(info.param.vocab) + "_k" +
         std::to_string(info.param.query_size);
}

// Every algorithm, over both in-memory and disk-backed lists, must agree
// with the tree oracle (and, on small inputs, the brute force) for many
// random documents and random keyword subsets.
TEST_P(SlcaPropertyTest, AllAlgorithmsMatchOracle) {
  const PropertyCase& param = GetParam();
  Rng rng(param.seed);
  RandomTreeOptions tree_options;
  tree_options.node_count = param.node_count;
  tree_options.vocab_size = param.vocab;

  for (int round = 0; round < 8; ++round) {
    const Document doc = GenerateRandomDocument(&rng, tree_options);
    InvertedIndex index = InvertedIndex::Build(doc);
    DiskIndexOptions disk_options;
    disk_options.in_memory = true;
    Result<std::unique_ptr<DiskIndex>> disk =
        DiskIndex::Build(index, "", disk_options);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();

    const std::vector<std::string> vocab = RandomTreeVocabulary(tree_options);
    for (int q = 0; q < 6; ++q) {
      // Random keyword subset (may include keywords absent from the doc).
      std::vector<std::string> keywords;
      std::vector<std::vector<DeweyId>> lists;
      for (size_t i = 0; i < param.query_size; ++i) {
        const std::string& kw = vocab[rng.Uniform(vocab.size())];
        keywords.push_back(kw);
        lists.push_back(index.Materialize(kw));
      }

      const std::vector<DeweyId> expected = TreeOracle(doc, lists).Slca();

      // Cross-check the oracle itself against brute force when feasible.
      size_t combos = 1;
      for (const auto& list : lists) {
        combos *= std::max<size_t>(list.size(), 1);
      }
      if (combos <= 4096) {
        EXPECT_EQ(Strings(BruteForceSlca(lists)), Strings(expected));
      }

      // The alternative semantics agree with their oracles too, over
      // both storage paths.
      {
        const TreeOracle oracle(doc, lists);
        QueryStats stats;
        std::vector<std::unique_ptr<KeywordList>> owned;
        std::vector<KeywordList*> ptrs;
        for (const auto& list : lists) {
          owned.push_back(std::make_unique<VectorKeywordList>(&list, &stats));
          ptrs.push_back(owned.back().get());
        }
        Result<std::vector<DeweyId>> elca = ComputeElcaList(ptrs, {}, &stats);
        ASSERT_TRUE(elca.ok());
        EXPECT_EQ(Strings(*elca), Strings(oracle.Elca()))
            << "elca seed=" << param.seed << " round=" << round;
        Result<std::vector<DeweyId>> lca = ComputeAllLcaList(ptrs, {}, &stats);
        ASSERT_TRUE(lca.ok());
        EXPECT_EQ(Strings(*lca), Strings(oracle.AllLca()))
            << "lca seed=" << param.seed << " round=" << round;

        // Disk-backed parity for both semantics.
        QueryStats disk_stats;
        std::vector<std::unique_ptr<KeywordList>> disk_owned;
        std::vector<KeywordList*> disk_ptrs;
        for (const std::string& kw : keywords) {
          const DiskIndex::TermInfo* info = (*disk)->FindTerm(kw);
          if (info == nullptr) {
            disk_owned.push_back(std::make_unique<EmptyKeywordList>());
          } else {
            disk_owned.push_back(std::make_unique<DiskKeywordList>(
                disk->get(), info->id, info->frequency, &disk_stats));
          }
          disk_ptrs.push_back(disk_owned.back().get());
        }
        Result<std::vector<DeweyId>> disk_elca =
            ComputeElcaList(disk_ptrs, {}, &disk_stats);
        ASSERT_TRUE(disk_elca.ok());
        EXPECT_EQ(Strings(*disk_elca), Strings(oracle.Elca()));
        Result<std::vector<DeweyId>> disk_lca =
            ComputeAllLcaList(disk_ptrs, {}, &disk_stats);
        ASSERT_TRUE(disk_lca.ok());
        EXPECT_EQ(Strings(*disk_lca), Strings(oracle.AllLca()));
      }

      for (SlcaAlgorithm algorithm :
           {SlcaAlgorithm::kIndexedLookupEager, SlcaAlgorithm::kScanEager,
            SlcaAlgorithm::kStack}) {
        // In-memory lists.
        {
          QueryStats stats;
          std::vector<std::unique_ptr<KeywordList>> owned;
          std::vector<KeywordList*> ptrs;
          for (const auto& list : lists) {
            owned.push_back(
                std::make_unique<VectorKeywordList>(&list, &stats));
            ptrs.push_back(owned.back().get());
          }
          Result<std::vector<DeweyId>> got =
              ComputeSlcaList(algorithm, ptrs, {}, &stats);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_EQ(Strings(*got), Strings(expected))
              << ToString(algorithm) << " (memory) seed=" << param.seed
              << " round=" << round << " q=" << q;
        }
        // Disk-backed lists.
        {
          QueryStats stats;
          std::vector<std::unique_ptr<KeywordList>> owned;
          std::vector<KeywordList*> ptrs;
          for (const std::string& kw : keywords) {
            const DiskIndex::TermInfo* info = (*disk)->FindTerm(kw);
            if (info == nullptr) {
              owned.push_back(std::make_unique<EmptyKeywordList>());
            } else {
              owned.push_back(std::make_unique<DiskKeywordList>(
                  disk->get(), info->id, info->frequency, &stats));
            }
            ptrs.push_back(owned.back().get());
          }
          Result<std::vector<DeweyId>> got =
              ComputeSlcaList(algorithm, ptrs, {}, &stats);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_EQ(Strings(*got), Strings(expected))
              << ToString(algorithm) << " (disk) seed=" << param.seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweep, SlcaPropertyTest,
    ::testing::Values(
        PropertyCase{1, 20, 3, 2}, PropertyCase{2, 50, 4, 2},
        PropertyCase{3, 50, 2, 3}, PropertyCase{4, 120, 5, 3},
        PropertyCase{5, 120, 3, 2}, PropertyCase{6, 300, 6, 4},
        PropertyCase{7, 300, 2, 2}, PropertyCase{8, 800, 8, 3},
        PropertyCase{9, 800, 4, 5}, PropertyCase{10, 40, 1, 1},
        PropertyCase{11, 2000, 10, 3}, PropertyCase{12, 2000, 5, 2}),
    CaseName);

// Deep, skinny trees stress the Dewey/LCA machinery differently from the
// bushy default shape.
TEST(SlcaPropertyDeepTest, DeepTreesMatchOracle) {
  Rng rng(99);
  RandomTreeOptions options;
  options.node_count = 300;
  options.max_depth = 40;
  options.max_children = 2;
  options.vocab_size = 4;
  for (int round = 0; round < 10; ++round) {
    const Document doc = GenerateRandomDocument(&rng, options);
    InvertedIndex index = InvertedIndex::Build(doc);
    const std::vector<std::string> vocab = RandomTreeVocabulary(options);
    std::vector<std::vector<DeweyId>> lists;
    for (const std::string& kw :
         {vocab[rng.Uniform(4)], vocab[rng.Uniform(4)]}) {
      lists.push_back(index.Materialize(kw));
    }
    const std::vector<DeweyId> expected = TreeOracle(doc, lists).Slca();
    for (SlcaAlgorithm algorithm :
         {SlcaAlgorithm::kIndexedLookupEager, SlcaAlgorithm::kScanEager,
          SlcaAlgorithm::kStack}) {
      QueryStats stats;
      std::vector<std::unique_ptr<KeywordList>> owned;
      std::vector<KeywordList*> ptrs;
      for (const auto& list : lists) {
        owned.push_back(std::make_unique<VectorKeywordList>(&list, &stats));
        ptrs.push_back(owned.back().get());
      }
      Result<std::vector<DeweyId>> got =
          ComputeSlcaList(algorithm, ptrs, {}, &stats);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Strings(*got), Strings(expected)) << ToString(algorithm);
    }
  }
}

// Paper Section 2 identity: slca(S1..Sk) == removeAncestors(lca(S1..Sk)),
// checked on 200+ seeded random collections for every algorithm variant.
// Query shapes deliberately include single-keyword queries (slca(S) = S)
// and duplicate keywords (repeating a set must not change the answer).
TEST(SlcaIdentityTest, SlcaEqualsRemoveAncestorsOfAllLca) {
  constexpr int kCollections = 200;
  for (int c = 0; c < kCollections; ++c) {
    Rng rng(10'000 + c);
    RandomTreeOptions options;
    options.node_count = 10 + rng.Uniform(80);
    options.vocab_size = 2 + rng.Uniform(5);
    options.max_depth = 4 + static_cast<uint32_t>(rng.Uniform(8));
    const Document doc = GenerateRandomDocument(&rng, options);
    InvertedIndex index = InvertedIndex::Build(doc);
    const std::vector<std::string> vocab = RandomTreeVocabulary(options);

    // One single-keyword query, one multi-keyword query and one query
    // with a duplicated keyword per collection.
    std::vector<std::vector<std::string>> queries;
    queries.push_back({vocab[rng.Uniform(vocab.size())]});
    {
      std::vector<std::string> multi;
      const size_t k = 2 + rng.Uniform(3);
      for (size_t i = 0; i < k; ++i) {
        multi.push_back(vocab[rng.Uniform(vocab.size())]);
      }
      queries.push_back(multi);
      multi.push_back(multi[rng.Uniform(multi.size())]);  // duplicate
      queries.push_back(multi);
    }

    for (const std::vector<std::string>& keywords : queries) {
      std::vector<std::vector<DeweyId>> lists;
      for (const std::string& kw : keywords) {
        lists.push_back(index.Materialize(kw));
      }

      // The identity itself, with allLca from the tree oracle.
      const TreeOracle oracle(doc, lists);
      const std::vector<DeweyId> identity = RemoveAncestors(oracle.AllLca());
      EXPECT_EQ(Strings(oracle.Slca()), Strings(identity))
          << "oracle identity, collection " << c;

      // And with allLca from the streaming algorithm, against the slca
      // of every algorithm variant.
      QueryStats stats;
      std::vector<std::unique_ptr<KeywordList>> owned;
      std::vector<KeywordList*> ptrs;
      for (const auto& list : lists) {
        owned.push_back(std::make_unique<VectorKeywordList>(&list, &stats));
        ptrs.push_back(owned.back().get());
      }
      Result<std::vector<DeweyId>> all_lca =
          ComputeAllLcaList(ptrs, {}, &stats);
      ASSERT_TRUE(all_lca.ok()) << all_lca.status().ToString();
      const std::vector<DeweyId> expected = RemoveAncestors(*all_lca);

      for (SlcaAlgorithm algorithm :
           {SlcaAlgorithm::kIndexedLookupEager, SlcaAlgorithm::kScanEager,
            SlcaAlgorithm::kStack}) {
        QueryStats algo_stats;
        std::vector<std::unique_ptr<KeywordList>> algo_owned;
        std::vector<KeywordList*> algo_ptrs;
        for (const auto& list : lists) {
          algo_owned.push_back(
              std::make_unique<VectorKeywordList>(&list, &algo_stats));
          algo_ptrs.push_back(algo_owned.back().get());
        }
        Result<std::vector<DeweyId>> slca =
            ComputeSlcaList(algorithm, algo_ptrs, {}, &algo_stats);
        ASSERT_TRUE(slca.ok()) << slca.status().ToString();
        EXPECT_EQ(Strings(*slca), Strings(expected))
            << ToString(algorithm) << " violates the Section 2 identity,"
            << " collection " << c;
      }
    }
  }
}

// Block size must never affect the result set, only delivery batching.
TEST(SlcaPropertyTest, BlockSizeInvariance) {
  Rng rng(7);
  RandomTreeOptions options;
  options.node_count = 400;
  options.vocab_size = 4;
  const Document doc = GenerateRandomDocument(&rng, options);
  InvertedIndex index = InvertedIndex::Build(doc);
  const std::vector<DeweyId> a = index.Materialize("w0");
  const std::vector<DeweyId> b = index.Materialize("w1");
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  QueryStats stats;
  VectorKeywordList la(&a, &stats), lb(&b, &stats);
  std::vector<KeywordList*> lists = {&la, &lb};
  SlcaOptions base;
  Result<std::vector<DeweyId>> baseline = ComputeSlcaList(
      SlcaAlgorithm::kIndexedLookupEager, lists, base, &stats);
  ASSERT_TRUE(baseline.ok());
  for (size_t block : {0u, 2u, 7u, 64u, 100000u}) {
    SlcaOptions opts;
    opts.block_size = block;
    Result<std::vector<DeweyId>> got = ComputeSlcaList(
        SlcaAlgorithm::kIndexedLookupEager, lists, opts, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Strings(*got), Strings(*baseline)) << "block=" << block;
  }
}

}  // namespace
}  // namespace xksearch
