// Differential fuzzing of the four SLCA algorithms and the disk path.
//
// Each case generates a seeded random collection, evaluates every query
// with Indexed Lookup Eager, Scan Eager, Stack and brute force — in
// memory and through the disk index — and compares all of them against
// the linear-time TreeOracle; a second pass does the same with transient
// read faults injected into the disk stores. Any divergence fails with a
// (seed, query) repro replayable via `xk_fuzz --seed=<seed> --cases=1`.
//
// Case counts: XK_FUZZ_CASES overrides the per-suite collection count
// (the CI default keeps the whole file in the fast tier).

#include "fuzz/harness.h"

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace xksearch {
namespace fuzz {
namespace {

uint64_t CasesFromEnv(uint64_t fallback) {
  const char* env = std::getenv("XK_FUZZ_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  const uint64_t n = std::strtoull(env, nullptr, 10);
  return n == 0 ? fallback : n;
}

void ExpectClean(const FuzzReport& report) {
  for (const Divergence& d : report.divergences) {
    ADD_FAILURE() << FormatDivergence(d);
  }
  EXPECT_TRUE(report.ok());
}

// ≥1000 (collection, query) cases with zero divergence is the headline
// acceptance bar: 175 collections x 4 queries each = 700 queries, each
// cross-checked a dozen ways (well over 1000 differential cases).
TEST(DifferentialFuzz, MemoryAndDiskAgreeWithOracle) {
  FuzzOptions options;
  const FuzzReport report = RunFuzz(1, CasesFromEnv(175), options);
  ExpectClean(report);
  EXPECT_EQ(report.collections, CasesFromEnv(175));
  EXPECT_GE(report.cases, 1000u);
}

TEST(DifferentialFuzz, SurvivesInjectedReadFaults) {
  FuzzOptions options;
  options.with_faults = true;
  const FuzzReport report = RunFuzz(50'000, CasesFromEnv(60), options);
  ExpectClean(report);
  // The schedule must actually have fired: a fault run where every query
  // sailed through would prove nothing.
  EXPECT_GT(report.clean_fault_errors, 0u);
  // And it must not have fired on literally everything, or the recovery
  // path was never exercised from a mixed state.
  EXPECT_GT(report.fault_survivals, 0u);
}

// Large trees push multi-page posting lists through the scan layout and
// readahead; fewer collections, bigger each.
TEST(DifferentialFuzz, LargeCollections) {
  FuzzOptions options;
  options.min_nodes = 400;
  options.max_nodes = 1200;
  options.max_vocab = 20;
  options.queries_per_collection = 3;
  const FuzzReport report = RunFuzz(90'000, CasesFromEnv(12), options);
  ExpectClean(report);
}

// Sharded scatter-gather parity, with fault rounds: every query also
// runs against one sharded collection per shard count in {1, 2, 4, 7}
// (multi-document corpora, sequential and pool-parallel execution, disk
// path, per-shard stats identity) and must reproduce the union of the
// per-document single-index answers. Sharding rides along in every suite
// above too — the defaults enable it — but this run pins a dedicated
// seed range with faults on so single-shard fault isolation (one faulted
// shard fails the query cleanly, zero leaked pins, routed-away queries
// unaffected, recovery exact) is exercised regardless of what the other
// suites' schedules happen to hit.
TEST(DifferentialFuzz, ShardedParityIncludingFaults) {
  FuzzOptions options;
  options.with_faults = true;
  options.max_extra_documents = 3;
  const FuzzReport report = RunFuzz(130'000, CasesFromEnv(60), options);
  ExpectClean(report);
  EXPECT_GT(report.clean_fault_errors, 0u);
  EXPECT_GT(report.fault_survivals, 0u);
  EXPECT_GE(report.cases, 1000u);
}

// Crash-recovery rounds: each collection's index is rebuilt file-backed,
// takes a seeded update batch killed at a seeded durable operation, and
// must reopen (WAL replay) as exactly the pre- or exactly the post-batch
// posting state — never a hybrid — with query parity against the
// matching side. This randomizes what the exhaustive sweep in
// crash_recovery_test.cc pins down: index shape, batch composition and
// kill point all come from the seed.
TEST(DifferentialFuzz, CrashRecoveryRoundsLandOnBatchBoundaries) {
  FuzzOptions options;
  options.crash_rounds = 2;
  // The crash rounds are the point; skip the orthogonal stages.
  options.queries_per_collection = 1;
  options.shard_counts.clear();
  options.chunk_counts.clear();
  const FuzzReport report = RunFuzz(200'000, CasesFromEnv(25), options);
  ExpectClean(report);
  // Both batch-boundary outcomes must occur across the rounds, or the
  // kill points only ever sampled one side of the commit barrier.
  EXPECT_GT(report.crash_landed_pre, 0u);
  EXPECT_GT(report.crash_landed_post, 0u);
}

// In-memory-only sweep is cheap, so it can afford many more shapes.
TEST(DifferentialFuzz, InMemoryOnlySweep) {
  FuzzOptions options;
  options.with_disk = false;
  const FuzzReport report = RunFuzz(700'000, CasesFromEnv(120), options);
  ExpectClean(report);
}

}  // namespace
}  // namespace fuzz
}  // namespace xksearch
