#include "slca/all_lca.h"

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/random_tree.h"
#include "gen/school.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/brute_force.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Ids;
using testing_util::Strings;

std::vector<DeweyId> RunAllLca(const std::vector<std::vector<DeweyId>>& lists,
                               QueryStats* stats = nullptr) {
  QueryStats local;
  if (stats == nullptr) stats = &local;
  std::vector<std::unique_ptr<KeywordList>> owned;
  std::vector<KeywordList*> ptrs;
  for (const auto& list : lists) {
    owned.push_back(std::make_unique<VectorKeywordList>(&list, stats));
    ptrs.push_back(owned.back().get());
  }
  Result<std::vector<DeweyId>> got = ComputeAllLcaList(ptrs, {}, stats);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  return got.ok() ? got.ValueOrDie() : std::vector<DeweyId>{};
}

TEST(AllLcaTest, SlcasAreAlwaysIncluded) {
  const auto s1 = Ids({"0.1.0", "0.2.0"});
  const auto s2 = Ids({"0.1.1", "0.2.1"});
  const std::vector<DeweyId> got = RunAllLca({s1, s2});
  // SLCAs 0.1 and 0.2; the root is also an LCA (e.g. lca(0.1.0, 0.2.1)).
  EXPECT_EQ(Strings(got), (std::vector<std::string>{"0", "0.1", "0.2"}));
}

TEST(AllLcaTest, MatchesBruteForceOnHandCases) {
  struct Case {
    std::vector<std::vector<DeweyId>> lists;
  };
  const std::vector<Case> cases = {
      {{Ids({"0.0.1", "0.2"}), Ids({"0.0.2", "0.3"})}},
      {{Ids({"0.1"}), Ids({"0.1.3.2"})}},
      {{Ids({"0.0.0.1", "0.0.5"}), Ids({"0.0.0.2", "0.0.6"})}},
      {{Ids({"0.1.1"}), Ids({"0.1.1"})}},
      {{Ids({"0.5"}), Ids({"0.5"}), Ids({"0.5"})}},
      {{Ids({"0.1", "0.2", "0.3"}), Ids({"0.2.5"})}},
  };
  for (size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(Strings(RunAllLca(cases[i].lists)),
              Strings(BruteForceAllLca(cases[i].lists)))
        << "case " << i;
  }
}

TEST(AllLcaTest, EmptyListYieldsNothing) {
  EXPECT_TRUE(RunAllLca({Ids({"0.1"}), {}}).empty());
}

TEST(AllLcaTest, SingleKeywordListIsItsOwnLcaSet) {
  // For k=1 every instance is the LCA of its own singleton combination.
  const auto s1 = Ids({"0.1", "0.1.2", "0.3"});
  EXPECT_EQ(Strings(RunAllLca({s1})),
            (std::vector<std::string>{"0.1", "0.1.2", "0.3"}));
}

TEST(AllLcaTest, SchoolExampleIncludesSharedAncestors) {
  Document doc = BuildSchoolDocument();
  InvertedIndex index = InvertedIndex::Build(doc);
  const std::vector<std::vector<DeweyId>> lists = {index.Materialize("john"),
                                                   index.Materialize("ben")};
  Result<std::vector<DeweyId>> expected =
      OracleAllLca(doc, index, {"john", "ben"});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Strings(RunAllLca(lists)), Strings(*expected));
  // LCAs strictly contain the SLCAs here (root, classes, ... qualify).
  Result<std::vector<DeweyId>> slcas = OracleSlca(doc, index, {"john", "ben"});
  ASSERT_TRUE(slcas.ok());
  EXPECT_GT(expected->size(), slcas->size());
}

TEST(AllLcaTest, CheckLcaProbesDirectly) {
  // w=0, u=0.1; keyword witness at 0.0 (left part) makes w an LCA.
  QueryStats stats;
  const auto left = Ids({"0.0"});
  VectorKeywordList l(&left, &stats);
  std::vector<KeywordList*> lists = {&l};
  Result<bool> is_lca = CheckLca(Id("0"), Id("0.1"), lists, &stats);
  ASSERT_TRUE(is_lca.ok());
  EXPECT_TRUE(*is_lca);

  // Witness only inside subtree(u): proves nothing.
  const auto inside = Ids({"0.1.5"});
  VectorKeywordList li(&inside, &stats);
  lists = {&li};
  is_lca = CheckLca(Id("0"), Id("0.1"), lists, &stats);
  ASSERT_TRUE(is_lca.ok());
  EXPECT_FALSE(*is_lca);

  // Witness right of subtree(u): uncle probe finds it.
  const auto right = Ids({"0.1.5", "0.4"});
  VectorKeywordList lr(&right, &stats);
  lists = {&lr};
  is_lca = CheckLca(Id("0"), Id("0.1"), lists, &stats);
  ASSERT_TRUE(is_lca.ok());
  EXPECT_TRUE(*is_lca);

  // Witness at w itself.
  const auto at_w = Ids({"0.2", "0.2.1.1"});
  VectorKeywordList lw(&at_w, &stats);
  lists = {&lw};
  is_lca = CheckLca(Id("0.2"), Id("0.2.1"), lists, &stats);
  ASSERT_TRUE(is_lca.ok());
  EXPECT_TRUE(*is_lca);
}

struct LcaPropertyCase {
  uint64_t seed;
  size_t node_count;
  size_t vocab;
  size_t query_size;
};

class AllLcaPropertyTest : public ::testing::TestWithParam<LcaPropertyCase> {};

TEST_P(AllLcaPropertyTest, MatchesTreeOracle) {
  const LcaPropertyCase& param = GetParam();
  Rng rng(param.seed);
  RandomTreeOptions options;
  options.node_count = param.node_count;
  options.vocab_size = param.vocab;
  for (int round = 0; round < 10; ++round) {
    const Document doc = GenerateRandomDocument(&rng, options);
    InvertedIndex index = InvertedIndex::Build(doc);
    const std::vector<std::string> vocab = RandomTreeVocabulary(options);
    std::vector<std::vector<DeweyId>> lists;
    for (size_t i = 0; i < param.query_size; ++i) {
      lists.push_back(index.Materialize(vocab[rng.Uniform(vocab.size())]));
    }
    const std::vector<DeweyId> expected = TreeOracle(doc, lists).AllLca();
    EXPECT_EQ(Strings(RunAllLca(lists)), Strings(expected))
        << "seed=" << param.seed << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweep, AllLcaPropertyTest,
    ::testing::Values(LcaPropertyCase{21, 30, 3, 2},
                      LcaPropertyCase{22, 80, 4, 2},
                      LcaPropertyCase{23, 80, 2, 3},
                      LcaPropertyCase{24, 200, 5, 2},
                      LcaPropertyCase{25, 500, 6, 3},
                      LcaPropertyCase{26, 500, 3, 4},
                      LcaPropertyCase{27, 1500, 8, 2}),
    [](const ::testing::TestParamInfo<LcaPropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(AllLcaTest, StatsChargeChecksToMatchOps) {
  const auto s1 = Ids({"0.1.2.3"});
  const auto s2 = Ids({"0.1.2.4"});
  QueryStats stats;
  RunAllLca({s1, s2}, &stats);
  // Beyond the SLCA computation itself, each ancestor of the single SLCA
  // (0.1.2) costs up to 2k match ops to check.
  EXPECT_GT(stats.match_ops, 4u);
}

}  // namespace
}  // namespace xksearch
