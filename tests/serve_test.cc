// The serving layer: thread pool admission/lifecycle, the sharded result
// cache, deadlines, and the QueryService facade under concurrency.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "gtest/gtest.h"
#include "serve/hot_list_cache.h"
#include "serve/metrics.h"
#include "serve/query_cache.h"
#include "serve/query_service.h"
#include "serve/thread_pool.h"
#include "shard/sharded_collection.h"
#include "storage/wal.h"
#include "test_util.h"

namespace xksearch {
namespace serve {
namespace {

using testing_util::Strings;

std::unique_ptr<XKSearch> BuildCorpus() {
  DblpOptions gen;
  gen.papers = 600;
  gen.seed = 7;
  gen.plants = {{"alpha", 8}, {"bravo", 60}, {"carol", 400}};
  Result<Document> doc = GenerateDblp(gen);
  EXPECT_TRUE(doc.ok());
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc));
  EXPECT_TRUE(system.ok());
  return std::move(*system);
}

/// Blocks pool workers until Release(), to build deterministic queue
/// states in the tests below.
class Gate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool::Options options;
  options.workers = 3;
  options.queue_capacity = 128;
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ++ran; }).ok());
  }
  pool.Stop(/*drain=*/true);
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.tasks_run(), 100u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, RejectsWhenQueueFull) {
  ThreadPool::Options options;
  options.workers = 1;
  options.queue_capacity = 2;
  ThreadPool pool(options);
  Gate gate;
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] { gate.Wait(); ++ran; }).ok());
  // The worker is blocked; the queue holds at most 2 more.
  // Give the worker a moment to dequeue the gate task, so exactly the
  // queued tasks count against capacity.
  while (pool.queue_depth() > 0) std::this_thread::yield();
  ASSERT_TRUE(pool.Submit([&] { ++ran; }).ok());
  ASSERT_TRUE(pool.Submit([&] { ++ran; }).ok());
  const Status rejected = pool.Submit([&] { ++ran; });
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected.ToString();
  gate.Release();
  pool.Stop(/*drain=*/true);
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, StopWithoutDrainDiscardsQueuedTasks) {
  ThreadPool::Options options;
  options.workers = 1;
  options.queue_capacity = 8;
  ThreadPool pool(options);
  Gate gate;
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] { gate.Wait(); ++ran; }).ok());
  while (pool.queue_depth() > 0) std::this_thread::yield();
  ASSERT_TRUE(pool.Submit([&] { ++ran; }).ok());
  ASSERT_TRUE(pool.Submit([&] { ++ran; }).ok());
  std::thread stopper([&] { pool.Stop(/*drain=*/false); });
  // Release the gate only after Stop has switched the pool to discard
  // mode; otherwise the worker could pick up a queued task in between.
  while (!pool.stopping()) std::this_thread::yield();
  gate.Release();
  stopper.join();
  // Only the in-flight gate task ran; the queued two were discarded.
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(pool.Submit([&] { ++ran; }).IsUnavailable());
}

TEST(StatusTest, ServingCodes) {
  const Status unavailable = Status::Unavailable("queue full");
  EXPECT_TRUE(unavailable.IsUnavailable());
  EXPECT_EQ(unavailable.ToString(), "Unavailable: queue full");
  const Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_EQ(deadline.ToString(), "Deadline exceeded: too slow");
}

TEST(SearchOptionsTest, EqualityAndHashCoverEveryField) {
  const SearchOptions base;
  SearchOptions other = base;
  EXPECT_TRUE(base == other);
  EXPECT_EQ(SearchOptionsHash()(base), SearchOptionsHash()(other));

  const auto differs = [&base](SearchOptions changed) {
    EXPECT_FALSE(base == changed);
    EXPECT_NE(SearchOptionsHash()(base), SearchOptionsHash()(changed));
  };
  other = base;
  other.algorithm = AlgorithmChoice::kStack;
  differs(other);
  other = base;
  other.semantics = Semantics::kElca;
  differs(other);
  other = base;
  other.use_disk_index = true;
  differs(other);
  other = base;
  other.block_size = 32;
  differs(other);
  other = base;
  other.auto_ratio_threshold = 2.0;
  differs(other);
}

SearchResult MakeResult(std::vector<DeweyId> nodes) {
  SearchResult result;
  result.nodes = std::move(nodes);
  result.algorithm = SlcaAlgorithm::kIndexedLookupEager;
  return result;
}

TEST(QueryCacheTest, HitMissAndLruEviction) {
  QueryCache::Options options;
  options.shards = 1;  // deterministic eviction order
  const QueryCacheKey key_a{{"alpha"}, SearchOptions()};
  const SearchResult value = MakeResult({DeweyId({0, 1}), DeweyId({0, 2})});
  // Budget for roughly three entries of this shape.
  options.capacity_bytes = 3 * QueryCache::ApproxEntryBytes(key_a, value) + 64;
  QueryCache cache(options);

  EXPECT_FALSE(cache.Lookup(key_a).has_value());
  cache.Insert(key_a, value);
  std::optional<SearchResult> hit = cache.Lookup(key_a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(Strings(hit->nodes), Strings(value.nodes));

  QueryCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);

  // Fill past budget; key_a stays hot via the lookup above plus one more
  // touch, so the LRU tail (the oldest untouched key) is evicted first.
  for (int i = 0; i < 4; ++i) {
    cache.Insert(QueryCacheKey{{"filler" + std::to_string(i)}, SearchOptions()},
                 value);
    (void)cache.Lookup(key_a);
  }
  stats = cache.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_TRUE(cache.Lookup(key_a).has_value());

  cache.Clear();
  stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_FALSE(cache.Lookup(key_a).has_value());
}

TEST(QueryCacheTest, RejectsEntriesAboveShardBudget) {
  QueryCache::Options options;
  options.shards = 1;
  options.capacity_bytes = 1;
  QueryCache cache(options);
  cache.Insert(QueryCacheKey{{"alpha"}, SearchOptions()},
               MakeResult({DeweyId({0, 1})}));
  const QueryCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.oversize_rejects, 1u);
}

TEST(QueryCacheTest, OptionsDistinguishEntries) {
  QueryCache cache(QueryCache::Options{});
  SearchOptions slca;
  SearchOptions elca;
  elca.semantics = Semantics::kElca;
  cache.Insert(QueryCacheKey{{"alpha"}, slca}, MakeResult({DeweyId({0, 1})}));
  EXPECT_TRUE(cache.Lookup(QueryCacheKey{{"alpha"}, slca}).has_value());
  EXPECT_FALSE(cache.Lookup(QueryCacheKey{{"alpha"}, elca}).has_value());
}

TEST(LatencyHistogramTest, PercentilesAreOrderedAndBucketed) {
  LatencyHistogram histogram;
  for (int i = 0; i < 900; ++i) histogram.Record(1000);     // ~1us
  for (int i = 0; i < 100; ++i) histogram.Record(1000000);  // ~1ms
  const LatencyHistogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  const uint64_t p50 = snap.PercentileNanos(0.50);
  const uint64_t p99 = snap.PercentileNanos(0.99);
  // Log buckets: 1000ns lands in [512, 1024), 1e6 in [524288, 1048576).
  EXPECT_GE(p50, 512u);
  EXPECT_LT(p50, 1024u);
  EXPECT_GE(p99, 524288u);
  EXPECT_LT(p99, 1048576u);
  EXPECT_LE(p50, p99);
}

TEST(QueryServiceTest, CacheKeyCanonicalizesKeywords) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  QueryService service(system.get(), QueryServiceOptions{});
  const QueryCacheKey a =
      service.MakeCacheKey({"Alpha", "BRAVO"}, SearchOptions());
  const QueryCacheKey b =
      service.MakeCacheKey({"bravo", "alpha", "alpha"}, SearchOptions());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(QueryCacheKeyHash()(a), QueryCacheKeyHash()(b));
}

TEST(QueryServiceTest, CacheHitMatchesEngineAndCounts) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  Result<SearchResult> direct = system->Search({"alpha", "carol"});
  ASSERT_TRUE(direct.ok());

  QueryServiceOptions options;
  options.pool.workers = 2;
  QueryService service(system.get(), options);

  Result<QueryResponse> first = service.Search({"alpha", "carol"});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_EQ(Strings(first->result.nodes), Strings(direct->nodes));

  Result<QueryResponse> second = service.Search({"carol", "alpha"});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(Strings(second->result.nodes), Strings(direct->nodes));

  EXPECT_EQ(service.metrics().requests, 2u);
  EXPECT_EQ(service.metrics().completed, 2u);
  EXPECT_EQ(service.metrics().cache_hits, 1u);
  EXPECT_EQ(service.cache_stats().hits, 1u);
  EXPECT_EQ(service.cache_stats().insertions, 1u);
}

TEST(QueryServiceTest, DeadlineExpiresWhileQueued) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  QueryServiceOptions options;
  options.pool.workers = 1;
  options.enable_cache = false;
  // The single worker sleeps 50ms per request, so the second request's
  // 1ms deadline is long gone when it is picked up.
  options.synthetic_backend_latency = std::chrono::microseconds(50000);
  QueryService service(system.get(), options);

  std::future<Result<QueryResponse>> blocker =
      service.Submit({"alpha"}, SearchOptions());
  std::future<Result<QueryResponse>> doomed = service.SubmitWithTimeout(
      {"carol"}, SearchOptions(), std::chrono::milliseconds(1));

  const Result<QueryResponse> blocked = blocker.get();
  EXPECT_TRUE(blocked.ok()) << blocked.status().ToString();
  const Result<QueryResponse> expired = doomed.get();
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status().ToString();
  EXPECT_EQ(service.metrics().deadline_exceeded, 1u);
}

TEST(QueryServiceTest, ShedsLoadWhenQueueFull) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  QueryServiceOptions options;
  options.pool.workers = 1;
  options.pool.queue_capacity = 1;
  options.enable_cache = false;
  // Identical queries would coalesce onto one flight instead of piling
  // into the queue (see the SingleFlight tests); turn that off so the
  // submissions genuinely contend for queue slots.
  options.single_flight = false;
  options.synthetic_backend_latency = std::chrono::microseconds(20000);
  QueryService service(system.get(), options);

  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit({"alpha"}, SearchOptions()));
  }
  int ok = 0;
  int rejected = 0;
  for (auto& future : futures) {
    const Result<QueryResponse> response = future.get();
    if (response.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(response.status().IsUnavailable())
          << response.status().ToString();
      ++rejected;
    }
  }
  // 1 in flight + 1 queued can succeed; with 6 rapid submissions at least
  // one must have been shed.
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(static_cast<uint64_t>(service.metrics().rejected),
            static_cast<uint64_t>(rejected));
}

TEST(QueryServiceTest, RejectsAfterShutdown) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  QueryService service(system.get(), QueryServiceOptions{});
  service.Shutdown();
  const Result<QueryResponse> response = service.Search({"alpha"});
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsUnavailable());
}

TEST(QueryServiceTest, DeterministicUnderConcurrentSubmitters) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const std::vector<std::vector<std::string>> queries = {
      {"alpha", "carol"}, {"bravo", "carol"}, {"alpha", "bravo", "carol"},
      {"alpha"},          {"carol"},
  };
  std::vector<std::vector<std::string>> expected;
  for (const auto& query : queries) {
    Result<SearchResult> direct = system->Search(query);
    ASSERT_TRUE(direct.ok());
    expected.push_back(Strings(direct->nodes));
  }

  QueryServiceOptions options;
  options.pool.workers = 4;
  options.pool.queue_capacity = 4096;
  QueryService service(system.get(), options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const size_t qi = static_cast<size_t>(t + r) % queries.size();
        Result<QueryResponse> response = service.Search(queries[qi]);
        if (!response.ok() ||
            Strings(response->result.nodes) != expected[qi]) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(service.metrics().requests, uint64_t{kThreads * kRounds});
  EXPECT_EQ(service.metrics().completed, uint64_t{kThreads * kRounds});
  // 5 distinct canonical queries; in the worst case every thread misses
  // each query once before its first insertion lands.
  EXPECT_GE(service.metrics().cache_hits,
            uint64_t{kThreads * kRounds - kThreads * 5});
}

TEST(QueryServiceTest, MetricsReportRendersEverySection) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  QueryService service(system.get(), QueryServiceOptions{});
  ASSERT_TRUE(service.Search({"alpha", "bravo"}).ok());
  ASSERT_TRUE(service.Search({"alpha", "bravo"}).ok());
  const std::string report = service.MetricsReport();
  for (const char* needle :
       {"requests:", "completed:", "cache_hits:", "rejected:", "latency_us:",
        "queue_wait_us:", "queue_depth:", "cache:", "hit_ratio=", "engine:",
        "match_ops="}) {
    EXPECT_NE(report.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in:\n"
        << report;
  }
  // No disk index behind this engine: the pool gauge lines are omitted.
  EXPECT_EQ(report.find("il_pool:"), std::string::npos);
}

TEST(QueryServiceTest, ServesDiskSearcherBackend) {
  DblpOptions gen;
  gen.papers = 300;
  gen.seed = 11;
  gen.plants = {{"alpha", 6}, {"carol", 200}};
  Result<Document> doc = GenerateDblp(gen);
  ASSERT_TRUE(doc.ok());
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc), build);
  ASSERT_TRUE(system.ok());
  DiskSearcher searcher((*system)->disk_index(),
                        (*system)->index_options().tokenizer);

  Result<SearchResult> direct = searcher.Search({"alpha", "carol"});
  ASSERT_TRUE(direct.ok());

  QueryServiceOptions options;
  options.pool.workers = 4;
  QueryService service(&searcher, options);
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < 20; ++r) {
        Result<QueryResponse> response = service.Search({"alpha", "carol"});
        if (!response.ok() ||
            Strings(response->result.nodes) != Strings(direct->nodes)) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);

  // A disk backend adds the buffer-pool gauge lines to the report (an
  // in-memory engine omits them, see MetricsReportRendersEverySection).
  const std::string report = service.MetricsReport();
  for (const char* needle : {"il_pool:", "scan_pool:", "readaheads="}) {
    EXPECT_NE(report.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in:\n"
        << report;
  }
}

std::unique_ptr<shard::ShardedCollection> BuildShardedCorpus(size_t shards) {
  shard::ShardedCollectionOptions options;
  options.shards = shards;
  shard::ShardedCollection::Builder builder(options);
  XKS_EXPECT_OK(builder.AddXml(
      "papers",
      "<papers><paper><title>keyword search</title><author>xu</author>"
      "</paper><paper><title>slca survey</title><author>xu</author>"
      "</paper></papers>"));
  XKS_EXPECT_OK(builder.AddXml(
      "books", "<books><book><title>keyword indexing</title>"
               "<author>chen</author></book></books>"));
  XKS_EXPECT_OK(builder.AddXml(
      "memos", "<memos><memo>standup topics</memo></memos>"));
  Result<std::unique_ptr<shard::ShardedCollection>> built =
      std::move(builder).Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return built.ok() ? built.MoveValueUnsafe() : nullptr;
}

TEST(QueryServiceTest, ServesShardedCollectionBackend) {
  std::unique_ptr<shard::ShardedCollection> collection = BuildShardedCorpus(3);
  ASSERT_NE(collection, nullptr);
  Result<shard::ShardedResult> direct = collection->Search({"keyword"});
  ASSERT_TRUE(direct.ok());
  ASSERT_FALSE(direct->result.nodes.empty());

  QueryServiceOptions options;
  options.shard_exec.workers = 2;
  QueryService service(collection.get(), options);
  Result<QueryResponse> miss = service.Search({"keyword"});
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss->cache_hit);
  EXPECT_EQ(Strings(miss->result.nodes), Strings(direct->result.nodes));

  // Keyword order/case never change the answer, so the canonicalized
  // cache key turns the textual variant into a hit with the same nodes.
  Result<QueryResponse> hit = service.Search({"KEYWORD", "keyword"});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(Strings(hit->result.nodes), Strings(direct->result.nodes));
  EXPECT_EQ(service.metrics().cache_hits.load(), 1u);

  // Engine errors surface unchanged through the service.
  EXPECT_TRUE(service.Search({"..."}).status().IsInvalidArgument());
}

TEST(QueryServiceTest, ShardedResponseCarriesAggregatedStats) {
  std::unique_ptr<shard::ShardedCollection> collection = BuildShardedCorpus(3);
  ASSERT_NE(collection, nullptr);
  // Reference run: the response-total stats must equal the field-wise sum
  // of the per-shard stats (the aggregation identity the gather stage
  // maintains), and the service must serve exactly those totals.
  Result<shard::ShardedResult> direct = collection->Search({"keyword"});
  ASSERT_TRUE(direct.ok());
  QueryStats sum;
  uint64_t contributed = 0;
  for (const shard::ShardQueryStats& s : direct->shards) {
    sum += s.stats;
    contributed += s.results;
  }
  EXPECT_EQ(sum.match_ops.load(), direct->result.stats.match_ops.load());
  EXPECT_EQ(sum.postings_read.load(),
            direct->result.stats.postings_read.load());
  EXPECT_EQ(sum.io_errors.load(), direct->result.stats.io_errors.load());
  EXPECT_EQ(contributed, direct->result.nodes.size());

  QueryServiceOptions options;
  options.enable_cache = false;
  QueryService service(collection.get(), options);
  Result<QueryResponse> response = service.Search({"keyword"});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->result.stats.match_ops.load(), sum.match_ops.load());
  // The service-level aggregate accumulated the same merged totals.
  EXPECT_EQ(service.metrics().engine_stats.match_ops.load(),
            sum.match_ops.load());
}

TEST(QueryServiceTest, ShardedMetricsReportHasPerShardGauges) {
  std::unique_ptr<shard::ShardedCollection> collection = BuildShardedCorpus(3);
  ASSERT_NE(collection, nullptr);
  QueryServiceOptions options;
  options.enable_cache = false;
  QueryService service(collection.get(), options);
  ASSERT_TRUE(service.Search({"keyword"}).ok());
  // "standup" lives only in one document; the other shards are pruned
  // and the per-shard gauges must show it.
  ASSERT_TRUE(service.Search({"standup"}).ok());
  const std::string report = service.MetricsReport();
  for (const char* needle :
       {"shard[0]:", "shard[1]:", "shard[2]:", "docs=", "executed=",
        "pruned=", "io_errors="}) {
    EXPECT_NE(report.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in:\n"
        << report;
  }
  uint64_t executed = 0;
  uint64_t pruned = 0;
  for (const shard::ShardCountersSnapshot& c : collection->CountersSnapshot()) {
    executed += c.executed;
    pruned += c.pruned;
  }
  EXPECT_GT(pruned, 0u);
  EXPECT_GT(executed, 0u);
}

TEST(HotListCacheTest, AdmitsAfterRepeatedSightingsAndServesHits) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const PackedDeweyList* carol = system->index().Find("carol");
  ASSERT_NE(carol, nullptr);

  HotListCache::Options options;
  options.max_bytes = 64 << 20;
  options.admit_after = 2;
  HotListCache cache(options);

  // First sighting: under the admission threshold, declined.
  EXPECT_EQ(cache.Get(carol), nullptr);
  EXPECT_EQ(cache.GetStats().misses, 1u);
  EXPECT_EQ(cache.GetStats().entries, 0u);

  // Second sighting: decoded, admitted, and served.
  std::shared_ptr<const std::vector<DeweyId>> decoded = cache.Get(carol);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(*decoded, carol->Materialize());
  HotListCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);

  // Third sighting: a straight hit on the same decoded copy.
  EXPECT_EQ(cache.Get(carol).get(), decoded.get());
  EXPECT_EQ(cache.GetStats().hits, 2u);
}

TEST(HotListCacheTest, ByteBudgetEvictsLeastHitEntriesFirst) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const PackedDeweyList* alpha = system->index().Find("alpha");
  const PackedDeweyList* bravo = system->index().Find("bravo");
  const PackedDeweyList* carol = system->index().Find("carol");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(bravo, nullptr);
  ASSERT_NE(carol, nullptr);

  // Measure each list's resident size through an unbounded cache.
  size_t bytes_bravo_carol;
  {
    HotListCache::Options unbounded;
    unbounded.max_bytes = size_t{1} << 30;
    unbounded.admit_after = 1;
    HotListCache probe(unbounded);
    ASSERT_NE(probe.Get(bravo), nullptr);
    ASSERT_NE(probe.Get(carol), nullptr);
    bytes_bravo_carol = probe.GetStats().bytes;
  }

  HotListCache::Options options;
  options.max_bytes = bytes_bravo_carol;
  options.admit_after = 1;
  HotListCache cache(options);
  ASSERT_NE(cache.Get(bravo), nullptr);
  ASSERT_NE(cache.Get(carol), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 2u);
  // Extra hits make carol the hotter entry.
  ASSERT_NE(cache.Get(carol), nullptr);
  ASSERT_NE(cache.Get(carol), nullptr);

  // Admitting alpha overflows the budget; the coldest entry (bravo, one
  // hit) is evicted, never carol.
  ASSERT_NE(cache.Get(alpha), nullptr);
  HotListCache::Stats stats = cache.GetStats();
  EXPECT_GE(stats.evicted, 1u);
  EXPECT_LE(stats.bytes, options.max_bytes);
  const uint64_t hits_before = stats.hits;
  EXPECT_NE(cache.Get(carol), nullptr);
  EXPECT_EQ(cache.GetStats().hits, hits_before + 1);  // carol still resident

  // A list that alone exceeds the whole budget is served once from the
  // decode just paid for, but never admitted (and not re-decoded later).
  HotListCache::Options tiny;
  tiny.max_bytes = 16;
  tiny.admit_after = 1;
  HotListCache small(tiny);
  EXPECT_NE(small.Get(carol), nullptr);  // the already-paid decode
  EXPECT_EQ(small.GetStats().entries, 0u);
  EXPECT_EQ(small.Get(carol), nullptr);  // rejected, no repeated decode
}

TEST(HotListCacheTest, WalCommitAndManualAdvanceFlushTheCache) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const PackedDeweyList* carol = system->index().Find("carol");
  ASSERT_NE(carol, nullptr);

  HotListCache::Options options;
  options.max_bytes = 64 << 20;
  options.admit_after = 2;
  HotListCache cache(options);
  EXPECT_EQ(cache.Get(carol), nullptr);
  std::shared_ptr<const std::vector<DeweyId>> pinned = cache.Get(carol);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(cache.GetStats().entries, 1u);

  // An updater commit (any WAL commit in the process) advances the
  // epoch: the next Get flushes everything, and the list must re-earn
  // admission from zero sightings.
  WalCounters::Instance().commits.fetch_add(1, std::memory_order_relaxed);
  EXPECT_EQ(cache.Get(carol), nullptr);
  HotListCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  // The copy handed out before the flush stays valid (pinned).
  EXPECT_EQ(pinned->size(), carol->size());

  // Re-admit, then flush explicitly via AdvanceEpoch.
  ASSERT_NE(cache.Get(carol), nullptr);
  cache.AdvanceEpoch();
  EXPECT_EQ(cache.GetStats().invalidations, 2u);
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(cache.Get(carol), nullptr);  // re-earning again
}

TEST(QueryServiceTest, HotListServingMatchesColdResultsAndReports) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  QueryServiceOptions options;
  options.pool.workers = 2;
  options.enable_cache = false;  // every Search runs the engine
  options.hot_list_bytes = 64 << 20;
  options.hot_list_admit_after = 2;
  QueryService service(system.get(), options);

  const std::vector<std::string> query = {"alpha", "carol"};
  Result<QueryResponse> cold = service.Search(query);
  ASSERT_TRUE(cold.ok());
  // Run past the admission threshold so later queries serve "carol" (and
  // "alpha") from decoded hot lists.
  for (int i = 0; i < 3; ++i) {
    Result<QueryResponse> hot = service.Search(query);
    ASSERT_TRUE(hot.ok());
    EXPECT_FALSE(hot->cache_hit);
    // The hot path must be invisible in the answer AND in the paper's
    // algorithm-level counters.
    EXPECT_EQ(hot->result.nodes, cold->result.nodes);
    EXPECT_EQ(hot->result.stats.match_ops.load(),
              cold->result.stats.match_ops.load());
  }
  HotListCache::Stats stats = service.hot_list_stats();
  EXPECT_GE(stats.admitted, 1u);
  EXPECT_GE(stats.hits, 1u);
  const std::string report = service.MetricsReport();
  EXPECT_NE(report.find("hot_lists:"), std::string::npos) << report;

  // InvalidateCache drops decoded lists along with cached results; the
  // answers must be unaffected.
  service.InvalidateCache();
  EXPECT_GE(service.hot_list_stats().invalidations, 1u);
  Result<QueryResponse> after = service.Search(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result.nodes, cold->result.nodes);
}

// --- Single-flight coalescing.

TEST(SingleFlightTest, CoalescedQueriesShareOneExecutionAndDecodeNothing) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const std::vector<std::string> query = {"alpha", "carol"};
  Result<SearchResult> reference = system->Search(query);
  ASSERT_TRUE(reference.ok());

  QueryServiceOptions options;
  options.pool.workers = 2;
  options.enable_cache = false;  // isolate single-flight from the cache
  options.single_flight = true;
  // Widen the in-flight window so the follower submissions below land
  // while the leader is still executing.
  options.synthetic_backend_latency = std::chrono::microseconds(50000);
  QueryService service(system.get(), options);

  // The flight registers synchronously at Submit, so every follower
  // attaches no matter when the leader's worker picks the job up.
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(query, SearchOptions()));
  }
  int coalesced = 0;
  for (auto& future : futures) {
    Result<QueryResponse> response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->cache_hit);
    EXPECT_EQ(response->result.nodes, reference->nodes);
    EXPECT_EQ(response->result.stats.match_ops.load(),
              reference->stats.match_ops.load());
    if (response->coalesced) ++coalesced;
  }
  EXPECT_EQ(coalesced, 5);
  EXPECT_EQ(service.metrics().coalesced_queries, 5u);
  EXPECT_EQ(service.metrics().requests, 6u);
  EXPECT_EQ(service.metrics().completed, 6u);
  // The aggregate engine counters advanced by exactly ONE execution:
  // the five coalesced requests decoded and matched nothing of their
  // own. (postings_read covers the decode side, match_ops the SLCA
  // side; both would be ~6x on a service that ran every duplicate.)
  EXPECT_EQ(service.metrics().engine_stats.match_ops.load(),
            reference->stats.match_ops.load());
  EXPECT_EQ(service.metrics().engine_stats.postings_read.load(),
            reference->stats.postings_read.load());
  const std::string report = service.MetricsReport();
  EXPECT_NE(report.find("coalesced:"), std::string::npos) << report;
}

// Regression test for the result-cache stampede: a cache lookup that
// missed used to race the miss's execution, so N identical queries
// submitted before the first insert all executed. Publication is now
// atomic with flight retirement: a submitter either hits the cache or
// attaches to the in-flight execution, never the gap between them.
TEST(SingleFlightTest, ClosesCacheLookupInsertRaceUnderStampede) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const std::vector<std::string> query = {"bravo", "carol"};
  Result<SearchResult> reference = system->Search(query);
  ASSERT_TRUE(reference.ok());

  QueryServiceOptions options;
  options.pool.workers = 4;
  options.enable_cache = true;
  options.single_flight = true;
  QueryService service(system.get(), options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 10;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        Result<QueryResponse> response = service.Search(query);
        if (!response.ok() || response->result.nodes != reference->nodes) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(service.metrics().requests, uint64_t{kThreads * kRounds});
  EXPECT_EQ(service.metrics().completed, uint64_t{kThreads * kRounds});
  // The stampede collapses to exactly one engine execution: everyone
  // else was a cache hit or a coalesced follower.
  EXPECT_EQ(service.metrics().engine_stats.match_ops.load(),
            reference->stats.match_ops.load());
  EXPECT_EQ(static_cast<uint64_t>(service.metrics().cache_hits) +
                static_cast<uint64_t>(service.metrics().coalesced_queries),
            uint64_t{kThreads * kRounds - 1});
}

TEST(SingleFlightTest, ExpiredLeaderStillServesItsFollowers) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  QueryServiceOptions options;
  options.pool.workers = 1;  // one worker: the blocker delays the leader
  options.enable_cache = false;
  options.single_flight = true;
  options.synthetic_backend_latency = std::chrono::microseconds(30000);
  QueryService service(system.get(), options);

  // Occupy the only worker for ~30ms.
  std::future<Result<QueryResponse>> blocker =
      service.Submit({"alpha"}, SearchOptions());
  // The leader's 5ms deadline will have passed by pickup; the followers
  // (no deadline) attach to its flight meanwhile.
  std::future<Result<QueryResponse>> leader = service.SubmitWithTimeout(
      {"bravo", "carol"}, SearchOptions(), std::chrono::milliseconds(5));
  std::vector<std::future<Result<QueryResponse>>> followers;
  for (int i = 0; i < 3; ++i) {
    followers.push_back(service.Submit({"bravo", "carol"}, SearchOptions()));
  }

  ASSERT_TRUE(blocker.get().ok());
  const Result<QueryResponse> expired = leader.get();
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status().ToString();
  // The execution still happened — for the followers' sake.
  for (auto& future : followers) {
    Result<QueryResponse> response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->coalesced);
  }
  EXPECT_EQ(service.metrics().deadline_exceeded, 1u);
  EXPECT_EQ(service.metrics().coalesced_queries, 3u);
}

TEST(SingleFlightTest, DistinctQueriesNeverCoalesce) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  QueryServiceOptions options;
  options.pool.workers = 2;
  options.enable_cache = false;
  options.single_flight = true;
  options.synthetic_backend_latency = std::chrono::microseconds(20000);
  QueryService service(system.get(), options);

  // Same in-flight window, different canonical keys.
  std::future<Result<QueryResponse>> a =
      service.Submit({"alpha"}, SearchOptions());
  std::future<Result<QueryResponse>> b =
      service.Submit({"bravo"}, SearchOptions());
  SearchOptions scan;
  scan.algorithm = AlgorithmChoice::kScanEager;
  // Same keywords but different semantic options: its own flight too.
  std::future<Result<QueryResponse>> c = service.Submit({"alpha"}, scan);
  ASSERT_TRUE(a.get().ok());
  ASSERT_TRUE(b.get().ok());
  ASSERT_TRUE(c.get().ok());
  EXPECT_EQ(service.metrics().coalesced_queries, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace xksearch
