#ifndef XKSEARCH_TESTS_TEST_UTIL_H_
#define XKSEARCH_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <string>
#include <vector>

#include "dewey/dewey_id.h"
#include "gtest/gtest.h"

namespace xksearch {
namespace testing_util {

/// Temp-file prefix unique to this process. Fixtures that share one
/// on-disk name across test cases need this: `ctest -j` runs every
/// gtest case as its own concurrent process, and a fixed path makes
/// one case's SetUp truncate the files another case is reading.
inline std::string UniqueTempPrefix(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "_" + std::to_string(getpid());
}

/// Builds a DeweyId from "0.1.2" (test-only convenience; asserts on
/// malformed input).
inline DeweyId Id(const std::string& text) {
  Result<DeweyId> parsed = DeweyId::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? parsed.ValueOrDie() : DeweyId();
}

/// Builds a vector of DeweyIds from dotted strings.
inline std::vector<DeweyId> Ids(const std::vector<std::string>& texts) {
  std::vector<DeweyId> out;
  out.reserve(texts.size());
  for (const std::string& t : texts) out.push_back(Id(t));
  return out;
}

/// Renders ids as dotted strings for readable failure messages.
inline std::vector<std::string> Strings(const std::vector<DeweyId>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (const DeweyId& id : ids) out.push_back(id.ToString());
  return out;
}

#define XKS_ASSERT_OK(expr)                                         \
  do {                                                              \
    const ::xksearch::Status _st = (expr);                          \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                        \
  } while (false)

#define XKS_EXPECT_OK(expr)                                         \
  do {                                                              \
    const ::xksearch::Status _st = (expr);                          \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                        \
  } while (false)

}  // namespace testing_util
}  // namespace xksearch

#endif  // XKSEARCH_TESTS_TEST_UTIL_H_
