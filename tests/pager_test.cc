#include "storage/pager.h"

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Page PatternPage(uint8_t seed) {
  Page p;
  for (size_t i = 0; i < kPageSize; ++i) {
    p.data[i] = static_cast<uint8_t>(seed + i);
  }
  return p;
}

template <typename StoreT>
void ExerciseStore(StoreT* store) {
  EXPECT_EQ(store->page_count(), 0u);
  Result<PageId> p0 = store->AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  Result<PageId> p1 = store->AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(store->page_count(), 2u);

  // Fresh pages are zeroed.
  Page read;
  XKS_ASSERT_OK(store->ReadPage(0, &read));
  for (size_t i = 0; i < kPageSize; i += 509) EXPECT_EQ(read.data[i], 0);

  const Page a = PatternPage(3);
  const Page b = PatternPage(7);
  XKS_ASSERT_OK(store->WritePage(0, a));
  XKS_ASSERT_OK(store->WritePage(1, b));
  XKS_ASSERT_OK(store->ReadPage(0, &read));
  EXPECT_EQ(read.data, a.data);
  XKS_ASSERT_OK(store->ReadPage(1, &read));
  EXPECT_EQ(read.data, b.data);

  // Out-of-range access fails cleanly.
  EXPECT_TRUE(store->ReadPage(2, &read).IsOutOfRange());
  EXPECT_TRUE(store->WritePage(9, a).IsOutOfRange());
}

TEST(MemPageStoreTest, BasicReadWrite) {
  MemPageStore store;
  ExerciseStore(&store);
}

TEST(FilePageStoreTest, BasicReadWrite) {
  const std::string path = TempPath("pager_basic.db");
  Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExerciseStore(store->get());
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, PersistsAcrossReopen) {
  const std::string path = TempPath("pager_reopen.db");
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AllocatePage().ok());
    XKS_ASSERT_OK((*store)->WritePage(0, PatternPage(42)));
    XKS_ASSERT_OK((*store)->Sync());
  }
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->page_count(), 1u);
    Page read;
    XKS_ASSERT_OK((*store)->ReadPage(0, &read));
    EXPECT_EQ(read.data, PatternPage(42).data);
  }
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, OpenMissingFileFails) {
  EXPECT_TRUE(
      FilePageStore::Open(TempPath("does_not_exist.db")).status().IsIoError());
}

TEST(FilePageStoreTest, OpenRejectsTornFile) {
  const std::string path = TempPath("pager_torn.db");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a page multiple", f);
    std::fclose(f);
  }
  EXPECT_TRUE(FilePageStore::Open(path).status().IsCorruption());
  std::remove(path.c_str());
}

// --- ReadPages: the vectored multi-page read path.

template <typename StoreT>
void FillStore(StoreT* store, uint8_t pages) {
  for (uint8_t i = 0; i < pages; ++i) {
    ASSERT_TRUE(store->AllocatePage().ok());
    XKS_ASSERT_OK(store->WritePage(i, PatternPage(i)));
  }
}

template <typename StoreT>
void ExerciseReadPages(StoreT* store) {
  FillStore(store, 80);

  // One fully contiguous run.
  {
    std::vector<PageId> ids;
    std::vector<Page> pages(10);
    std::vector<Page*> ptrs;
    for (PageId id = 20; id < 30; ++id) ids.push_back(id);
    for (Page& p : pages) ptrs.push_back(&p);
    XKS_ASSERT_OK(store->ReadPages(ids.data(), ids.size(), ptrs.data()));
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(pages[i].data, PatternPage(static_cast<uint8_t>(ids[i])).data);
    }
  }
  // Gaps split the batch into independent runs.
  {
    const std::vector<PageId> ids = {0, 1, 5, 6, 7, 42, 79};
    std::vector<Page> pages(ids.size());
    std::vector<Page*> ptrs;
    for (Page& p : pages) ptrs.push_back(&p);
    XKS_ASSERT_OK(store->ReadPages(ids.data(), ids.size(), ptrs.data()));
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(pages[i].data, PatternPage(static_cast<uint8_t>(ids[i])).data);
    }
  }
  // Single page and empty batch degenerate cleanly.
  {
    Page page;
    Page* ptr = &page;
    const PageId id = 13;
    XKS_ASSERT_OK(store->ReadPages(&id, 1, &ptr));
    EXPECT_EQ(page.data, PatternPage(13).data);
    XKS_ASSERT_OK(store->ReadPages(nullptr, 0, nullptr));
  }
  // An out-of-range id fails the batch without touching later pages.
  {
    const std::vector<PageId> ids = {78, 79, 80};
    std::vector<Page> pages(ids.size());
    std::vector<Page*> ptrs;
    for (Page& p : pages) ptrs.push_back(&p);
    EXPECT_TRUE(
        store->ReadPages(ids.data(), ids.size(), ptrs.data()).IsOutOfRange());
  }
}

TEST(MemPageStoreTest, ReadPagesMatchesPerPageReads) {
  MemPageStore store;
  ExerciseReadPages(&store);
}

TEST(FilePageStoreTest, ReadPagesMatchesPerPageReads) {
  const std::string path = TempPath("pager_vectored.db");
  Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // FilePageStore overrides ReadPages with preadv over contiguous runs;
  // the contract (and these assertions) are identical to the default.
  ExerciseReadPages(store->get());
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, ReadPagesSpanningManyRuns) {
  // 80 pages read in one call: longer than one iovec run cap, so the
  // implementation must chain several preadv calls and still land every
  // page in its right slot.
  const std::string path = TempPath("pager_vectored_runs.db");
  Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
  ASSERT_TRUE(store.ok());
  FillStore(store->get(), 80);
  std::vector<PageId> ids;
  for (PageId id = 0; id < 80; ++id) ids.push_back(id);
  std::vector<Page> pages(ids.size());
  std::vector<Page*> ptrs;
  for (Page& p : pages) ptrs.push_back(&p);
  XKS_ASSERT_OK(
      (*store)->ReadPages(ids.data(), ids.size(), ptrs.data()));
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(pages[i].data, PatternPage(static_cast<uint8_t>(ids[i])).data);
  }
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, CreateTruncatesExisting) {
  const std::string path = TempPath("pager_trunc.db");
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AllocatePage().ok());
  }
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->page_count(), 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xksearch
