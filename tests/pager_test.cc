#include "storage/pager.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Page PatternPage(uint8_t seed) {
  Page p;
  for (size_t i = 0; i < kPageSize; ++i) {
    p.data[i] = static_cast<uint8_t>(seed + i);
  }
  return p;
}

template <typename StoreT>
void ExerciseStore(StoreT* store) {
  EXPECT_EQ(store->page_count(), 0u);
  Result<PageId> p0 = store->AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  Result<PageId> p1 = store->AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(store->page_count(), 2u);

  // Fresh pages are zeroed.
  Page read;
  XKS_ASSERT_OK(store->ReadPage(0, &read));
  for (size_t i = 0; i < kPageSize; i += 509) EXPECT_EQ(read.data[i], 0);

  const Page a = PatternPage(3);
  const Page b = PatternPage(7);
  XKS_ASSERT_OK(store->WritePage(0, a));
  XKS_ASSERT_OK(store->WritePage(1, b));
  XKS_ASSERT_OK(store->ReadPage(0, &read));
  EXPECT_EQ(read.data, a.data);
  XKS_ASSERT_OK(store->ReadPage(1, &read));
  EXPECT_EQ(read.data, b.data);

  // Out-of-range access fails cleanly.
  EXPECT_TRUE(store->ReadPage(2, &read).IsOutOfRange());
  EXPECT_TRUE(store->WritePage(9, a).IsOutOfRange());
}

TEST(MemPageStoreTest, BasicReadWrite) {
  MemPageStore store;
  ExerciseStore(&store);
}

TEST(FilePageStoreTest, BasicReadWrite) {
  const std::string path = TempPath("pager_basic.db");
  Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExerciseStore(store->get());
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, PersistsAcrossReopen) {
  const std::string path = TempPath("pager_reopen.db");
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AllocatePage().ok());
    XKS_ASSERT_OK((*store)->WritePage(0, PatternPage(42)));
    XKS_ASSERT_OK((*store)->Sync());
  }
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ((*store)->page_count(), 1u);
    Page read;
    XKS_ASSERT_OK((*store)->ReadPage(0, &read));
    EXPECT_EQ(read.data, PatternPage(42).data);
  }
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, OpenMissingFileFails) {
  EXPECT_TRUE(
      FilePageStore::Open(TempPath("does_not_exist.db")).status().IsIoError());
}

TEST(FilePageStoreTest, OpenRejectsTornFile) {
  const std::string path = TempPath("pager_torn.db");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a page multiple", f);
    std::fclose(f);
  }
  EXPECT_TRUE(FilePageStore::Open(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, CreateTruncatesExisting) {
  const std::string path = TempPath("pager_trunc.db");
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AllocatePage().ok());
  }
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->page_count(), 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xksearch
