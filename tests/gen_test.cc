#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/dblp_generator.h"
#include "gen/query_sampler.h"
#include "gen/random_tree.h"
#include "gen/school.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xksearch {
namespace {

TEST(SchoolTest, BuildsExpectedShape) {
  Document doc = BuildSchoolDocument();
  EXPECT_EQ(doc.tag(doc.root()), "school");
  EXPECT_GT(doc.node_count(), 30u);
  // The XML rendering parses back to the same structure.
  Result<Document> reparsed = ParseXml(SchoolXml());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->node_count(), doc.node_count());
}

TEST(RandomTreeTest, DeterministicForSameSeed) {
  RandomTreeOptions options;
  options.node_count = 200;
  Rng r1(5), r2(5);
  const Document a = GenerateRandomDocument(&r1, options);
  const Document b = GenerateRandomDocument(&r2, options);
  EXPECT_EQ(SerializeXml(a), SerializeXml(b));
}

TEST(RandomTreeTest, RespectsNodeBudgetAndDepth) {
  RandomTreeOptions options;
  options.node_count = 150;
  options.max_depth = 4;
  Rng rng(8);
  const Document doc = GenerateRandomDocument(&rng, options);
  size_t elements = 0;
  for (NodeId n = 0; n < doc.node_count(); ++n) {
    if (doc.IsElement(n)) ++elements;
    // Text children add one extra level beyond element depth.
    EXPECT_LE(doc.level(n), options.max_depth + 1);
  }
  EXPECT_LE(elements, options.node_count);
  EXPECT_GT(elements, options.node_count / 2);
}

TEST(RandomTreeTest, VocabularyCoversRequestedWords) {
  RandomTreeOptions options;
  options.vocab_size = 3;
  EXPECT_EQ(RandomTreeVocabulary(options),
            (std::vector<std::string>{"w0", "w1", "w2"}));
}

TEST(DblpGeneratorTest, PlantedFrequenciesAreExact) {
  DblpOptions options;
  options.papers = 2000;
  options.seed = 11;
  options.plants = {{"alpha", 10}, {"beta", 250}, {"gamma", 2000}};
  Result<Document> doc = GenerateDblp(options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  InvertedIndex index = InvertedIndex::Build(*doc);
  EXPECT_EQ(index.Frequency("alpha"), 10u);
  EXPECT_EQ(index.Frequency("beta"), 250u);
  EXPECT_EQ(index.Frequency("gamma"), 2000u);
}

TEST(DblpGeneratorTest, ShapeIsGroupedByVenueAndYear) {
  DblpOptions options;
  options.papers = 500;
  options.venues = 5;
  options.years_per_venue = 4;
  Result<Document> doc = GenerateDblp(options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->tag(doc->root()), "dblp");
  EXPECT_EQ(doc->child_count(doc->root()), 5u);
  // Depth: dblp/venue/year/paper/field/text = 6 levels (0-based max 5).
  EXPECT_EQ(doc->max_depth(), 5u);
  // Papers land under years.
  const NodeId venue = doc->children(doc->root())[0];
  bool found_year = false;
  for (NodeId c : doc->children(venue)) {
    if (doc->tag(c) == "year") {
      found_year = true;
      EXPECT_FALSE(doc->children(c).empty());
    }
  }
  EXPECT_TRUE(found_year);
}

TEST(DblpGeneratorTest, DeterministicForSeed) {
  DblpOptions options;
  options.papers = 300;
  options.plants = {{"kw", 30}};
  Result<Document> a = GenerateDblp(options);
  Result<Document> b = GenerateDblp(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeXml(*a), SerializeXml(*b));
}

TEST(DblpGeneratorTest, RejectsImpossiblePlants) {
  DblpOptions options;
  options.papers = 10;
  options.plants = {{"kw", 11}};
  EXPECT_TRUE(GenerateDblp(options).status().IsInvalidArgument());

  DblpOptions collision;
  collision.plants = {{"t123", 1}};  // background vocabulary prefix
  EXPECT_TRUE(GenerateDblp(collision).status().IsInvalidArgument());

  DblpOptions zero;
  zero.papers = 0;
  EXPECT_TRUE(GenerateDblp(zero).status().IsInvalidArgument());
}

TEST(DblpGeneratorTest, MultiplePlantsCanShareAPaper) {
  // With frequencies equal to the paper count every paper carries both.
  DblpOptions options;
  options.papers = 50;
  options.plants = {{"xx", 50}, {"yy", 50}};
  Result<Document> doc = GenerateDblp(options);
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  EXPECT_EQ(index.Frequency("xx"), 50u);
  EXPECT_EQ(index.Frequency("yy"), 50u);
}

TEST(DblpGeneratorTest, ZipfBackgroundIsSkewed) {
  DblpOptions uniform;
  uniform.papers = 3000;
  uniform.vocab_size = 500;
  DblpOptions zipf = uniform;
  zipf.zipf_exponent = 1.1;
  Result<Document> u = GenerateDblp(uniform);
  Result<Document> z = GenerateDblp(zipf);
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(z.ok());
  InvertedIndex ui = InvertedIndex::Build(*u);
  InvertedIndex zi = InvertedIndex::Build(*z);
  // Under Zipf, the most frequent background word dominates; under the
  // uniform draw no word does.
  auto max_freq = [](const InvertedIndex& index) {
    uint64_t best = 0;
    for (const std::string& term : index.Terms()) {
      if (term.size() >= 2 && term[0] == 't' &&
          std::isdigit(static_cast<unsigned char>(term[1]))) {
        best = std::max<uint64_t>(best, index.Frequency(term));
      }
    }
    return best;
  };
  EXPECT_GT(max_freq(zi), 2 * max_freq(ui));
  // The long tail: Zipf leaves many vocabulary words unused or rare.
  EXPECT_LT(zi.term_count(), ui.term_count() + 200);
}

TEST(QuerySamplerTest, FindsKeywordNearTargetFrequency) {
  DblpOptions options;
  options.papers = 1000;
  options.plants = {{"rare", 10}, {"mid", 100}, {"common", 900}};
  Result<Document> doc = GenerateDblp(options);
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  QuerySampler sampler(index);
  Rng rng(3);
  const std::string kw = sampler.SampleKeyword(&rng, 10, 0.0);
  EXPECT_EQ(index.Frequency(kw), 10u);
  // A frequency no term has (tolerance 0) yields nothing.
  EXPECT_EQ(sampler.SampleKeyword(&rng, 55555, 0.0), "");
}

TEST(QuerySamplerTest, QueriesHaveRequestedShape) {
  DblpOptions options;
  options.papers = 1000;
  options.plants = {{"aa", 50}, {"ab", 50}, {"ac", 50}, {"big", 800}};
  Result<Document> doc = GenerateDblp(options);
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  QuerySampler sampler(index);
  Rng rng(4);
  const auto queries = sampler.SampleQueries(&rng, 40, {50, 800}, 0.1);
  EXPECT_EQ(queries.size(), 40u);
  for (const auto& q : queries) {
    ASSERT_EQ(q.size(), 2u);
    EXPECT_NEAR(static_cast<double>(index.Frequency(q[0])), 50.0, 5.0);
    EXPECT_NEAR(static_cast<double>(index.Frequency(q[1])), 800.0, 80.0);
    EXPECT_NE(q[0], q[1]);
  }
}

}  // namespace
}  // namespace xksearch
