#include "index/tokenizer.h"

#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "xml/parser.h"

namespace xksearch {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Yu Xu, and Yannis"),
            (std::vector<std::string>{"yu", "xu", "and", "yannis"}));
  EXPECT_EQ(Tokenize("a-b_c.d"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(TokenizerTest, LowercasesByDefault) {
  EXPECT_EQ(Tokenize("JOHN Ben"), (std::vector<std::string>{"john", "ben"}));
  TokenizerOptions keep_case;
  keep_case.lowercase = false;
  EXPECT_EQ(Tokenize("JOHN Ben", keep_case),
            (std::vector<std::string>{"JOHN", "Ben"}));
}

TEST(TokenizerTest, DigitsAreTokens) {
  EXPECT_EQ(Tokenize("SIGMOD 2005"),
            (std::vector<std::string>{"sigmod", "2005"}));
  EXPECT_EQ(Tokenize("cs2a"), (std::vector<std::string>{"cs2a"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInputs) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,.;!  ").empty());
}

TEST(TokenizerTest, MinLengthFilters) {
  TokenizerOptions opts;
  opts.min_length = 3;
  EXPECT_EQ(Tokenize("a bb ccc dddd", opts),
            (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(TokenizerTest, StreamingMatchesBatch) {
  const std::string text = "The Indexed-Lookup Eager algorithm, 2005!";
  std::vector<std::string> streamed;
  TokenizeTo(text, {}, [&](std::string_view t) { streamed.emplace_back(t); });
  EXPECT_EQ(streamed, Tokenize(text));
}

// Degenerate text nodes must tokenize to nothing — and survive the whole
// index path: a document whose text is all whitespace or punctuation
// indexes cleanly with zero postings from those nodes.
TEST(TokenizerTest, DegenerateTextNodes) {
  EXPECT_TRUE(Tokenize(" \t\r\n  ").empty());
  EXPECT_TRUE(Tokenize("?!.,;:-_()[]{}<>*&^%$#@~`'\"|\\/+=").empty());
  EXPECT_TRUE(Tokenize("\xC3\xA9").empty());  // non-ASCII bytes separate

  Result<Document> doc = ParseXml(
      "<r><a>   </a><b>?!.,</b><c></c><d>\n\t</d><e>real words</e></r>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  InvertedIndex index = InvertedIndex::Build(*doc);
  EXPECT_NE(index.Find("real"), nullptr);
  EXPECT_NE(index.Find("words"), nullptr);
  // Only tag names and the two real words: nothing leaked out of the
  // degenerate text nodes.
  for (const std::string& term : index.Terms()) {
    EXPECT_TRUE(term == "r" || term == "a" || term == "b" || term == "c" ||
                term == "d" || term == "e" || term == "real" ||
                term == "words")
        << "unexpected term: " << term;
  }
}

TEST(NormalizeKeywordTest, NormalizesLikeIndexer) {
  EXPECT_EQ(NormalizeKeyword("John"), "john");
  EXPECT_EQ(NormalizeKeyword("  Ben!  "), "ben");
  EXPECT_EQ(NormalizeKeyword("!!!"), "");
  TokenizerOptions opts;
  opts.min_length = 4;
  EXPECT_EQ(NormalizeKeyword("abc", opts), "");
}

}  // namespace
}  // namespace xksearch
