#include "storage/disk_index.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "gen/dblp_generator.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Ids;

// Builds a small deterministic inverted index by hand.
InvertedIndex MakeSmallIndex() {
  InvertedIndex index;
  for (const DeweyId& id : Ids({"0.0.1", "0.1.2", "0.3.0.1"})) {
    index.AddPosting("apple", id);
  }
  for (const DeweyId& id : Ids({"0.1.0", "0.2"})) {
    index.AddPosting("banana", id);
  }
  index.AddPosting("cherry", Id("0.5.5.5"));
  return index;
}

DiskIndexOptions MemOptions() {
  DiskIndexOptions opts;
  opts.in_memory = true;
  return opts;
}

TEST(DiskIndexTest, DictionaryMatchesSource) {
  InvertedIndex src = MakeSmallIndex();
  Result<std::unique_ptr<DiskIndex>> index =
      DiskIndex::Build(src, "", MemOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->term_count(), 3u);
  EXPECT_EQ((*index)->total_postings(), 6u);
  const DiskIndex::TermInfo* apple = (*index)->FindTerm("apple");
  ASSERT_NE(apple, nullptr);
  EXPECT_EQ(apple->frequency, 3u);
  EXPECT_EQ((*index)->FindTerm("durian"), nullptr);
}

TEST(DiskIndexTest, PostingCursorStreamsFullList) {
  InvertedIndex src = MakeSmallIndex();
  Result<std::unique_ptr<DiskIndex>> index =
      DiskIndex::Build(src, "", MemOptions());
  ASSERT_TRUE(index.ok());
  const DiskIndex::TermInfo* apple = (*index)->FindTerm("apple");
  ASSERT_NE(apple, nullptr);
  Result<DiskIndex::PostingCursor> cursor = (*index)->OpenPostings(apple->id);
  ASSERT_TRUE(cursor.ok());
  std::vector<DeweyId> got;
  DeweyId id;
  while (cursor->Next(&id)) got.push_back(id);
  XKS_ASSERT_OK(cursor->status());
  EXPECT_EQ(got, src.Materialize("apple"));
}

TEST(DiskIndexTest, RightAndLeftMatchAgreeWithBinarySearch) {
  InvertedIndex src = MakeSmallIndex();
  Result<std::unique_ptr<DiskIndex>> index =
      DiskIndex::Build(src, "", MemOptions());
  ASSERT_TRUE(index.ok());
  const DiskIndex::TermInfo* apple = (*index)->FindTerm("apple");
  const std::vector<DeweyId> list = src.Materialize("apple");

  const auto probes =
      Ids({"0", "0.0", "0.0.1", "0.0.1.0", "0.1", "0.1.2", "0.2", "0.3.0.1",
           "0.3.0.2", "0.9", "0.0.0"});
  for (const DeweyId& probe : probes) {
    DeweyId got;
    Result<bool> rm = (*index)->RightMatch(apple->id, probe, &got);
    ASSERT_TRUE(rm.ok());
    auto lb = std::lower_bound(list.begin(), list.end(), probe);
    EXPECT_EQ(*rm, lb != list.end()) << probe.ToString();
    if (*rm) {
      EXPECT_EQ(got, *lb) << probe.ToString();
    }

    Result<bool> lm = (*index)->LeftMatch(apple->id, probe, &got);
    ASSERT_TRUE(lm.ok());
    // Last element <= probe.
    auto ub = std::upper_bound(list.begin(), list.end(), probe);
    EXPECT_EQ(*lm, ub != list.begin()) << probe.ToString();
    if (*lm) {
      EXPECT_EQ(got, *(ub - 1)) << probe.ToString();
    }
  }
}

TEST(DiskIndexTest, MatchDoesNotLeakAcrossTerms) {
  InvertedIndex src = MakeSmallIndex();
  Result<std::unique_ptr<DiskIndex>> index =
      DiskIndex::Build(src, "", MemOptions());
  ASSERT_TRUE(index.ok());
  // banana ends at 0.2; a right-match beyond it must not return cherry's
  // postings even though they follow in the composite key space.
  const DiskIndex::TermInfo* banana = (*index)->FindTerm("banana");
  DeweyId got;
  Result<bool> rm = (*index)->RightMatch(banana->id, Id("0.4"), &got);
  ASSERT_TRUE(rm.ok());
  EXPECT_FALSE(*rm);
  // cherry starts at 0.5.5.5; a left-match before it must not return
  // banana's postings.
  const DiskIndex::TermInfo* cherry = (*index)->FindTerm("cherry");
  Result<bool> lm = (*index)->LeftMatch(cherry->id, Id("0.1"), &got);
  ASSERT_TRUE(lm.ok());
  EXPECT_FALSE(*lm);
}

TEST(DiskIndexTest, LargeListSpansManyBlocks) {
  InvertedIndex src;
  std::vector<DeweyId> expected;
  for (uint32_t i = 0; i < 20000; ++i) {
    DeweyId id({0, i / 100, i % 100, 3});
    src.AddPosting("big", id);
    expected.push_back(id);
  }
  Result<std::unique_ptr<DiskIndex>> index =
      DiskIndex::Build(src, "", MemOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_GT((*index)->scan_page_count(), 3u);

  const DiskIndex::TermInfo* big = (*index)->FindTerm("big");
  Result<DiskIndex::PostingCursor> cursor = (*index)->OpenPostings(big->id);
  ASSERT_TRUE(cursor.ok());
  std::vector<DeweyId> got;
  DeweyId id;
  while (cursor->Next(&id)) got.push_back(id);
  XKS_ASSERT_OK(cursor->status());
  EXPECT_EQ(got, expected);

  // Random probes across block boundaries.
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    const DeweyId probe(
        {0, static_cast<uint32_t>(rng.Uniform(210)),
         static_cast<uint32_t>(rng.Uniform(110))});
    DeweyId got_rm;
    Result<bool> rm = (*index)->RightMatch(big->id, probe, &got_rm);
    ASSERT_TRUE(rm.ok());
    auto lb = std::lower_bound(expected.begin(), expected.end(), probe);
    ASSERT_EQ(*rm, lb != expected.end());
    if (*rm) {
      EXPECT_EQ(got_rm, *lb);
    }
  }
}

TEST(DiskIndexTest, ColdAndHotCacheAccounting) {
  InvertedIndex src;
  for (uint32_t i = 0; i < 5000; ++i) {
    src.AddPosting("kw", DeweyId({0, i / 64, i % 64}));
  }
  Result<std::unique_ptr<DiskIndex>> index =
      DiskIndex::Build(src, "", MemOptions());
  ASSERT_TRUE(index.ok());
  DiskIndex& di = **index;

  QueryStats cold;
  XKS_ASSERT_OK(di.DropCaches());
  const DiskIndex::TermInfo* kw = di.FindTerm("kw");
  Result<DiskIndex::PostingCursor> cursor = di.OpenPostings(kw->id, &cold);
  ASSERT_TRUE(cursor.ok());
  DeweyId id;
  size_t n = 0;
  while (cursor->Next(&id)) ++n;
  EXPECT_EQ(n, 5000u);
  EXPECT_GT(cold.page_reads, 0u);

  // Hot: same scan over a warm pool costs no reads.
  QueryStats hot;
  Result<DiskIndex::PostingCursor> cursor2 = di.OpenPostings(kw->id, &hot);
  ASSERT_TRUE(cursor2.ok());
  n = 0;
  while (cursor2->Next(&id)) ++n;
  EXPECT_EQ(n, 5000u);
  EXPECT_EQ(hot.page_reads, 0u);
  EXPECT_GT(hot.page_hits, 0u);
}

TEST(DiskIndexTest, FileBackedBuildAndReopen) {
  const std::string prefix = ::testing::TempDir() + "/disk_index_files";
  InvertedIndex src = MakeSmallIndex();
  {
    DiskIndexOptions opts;  // file-backed
    Result<std::unique_ptr<DiskIndex>> built =
        DiskIndex::Build(src, prefix, opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_EQ((*built)->term_count(), 3u);
  }
  {
    Result<std::unique_ptr<DiskIndex>> opened = DiskIndex::Open(prefix);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ((*opened)->term_count(), 3u);
    const DiskIndex::TermInfo* apple = (*opened)->FindTerm("apple");
    ASSERT_NE(apple, nullptr);
    DeweyId got;
    Result<bool> rm = (*opened)->RightMatch(apple->id, Id("0"), &got);
    ASSERT_TRUE(rm.ok());
    EXPECT_TRUE(*rm);
    EXPECT_EQ(got, Id("0.0.1"));
  }
  for (const char* suffix : {".il", ".scan", ".dict"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(DiskIndexTest, UncompressedVariantsBehaveIdentically) {
  InvertedIndex src = MakeSmallIndex();
  DiskIndexOptions plain = MemOptions();
  plain.compress_dewey = false;
  plain.delta_compress = false;
  Result<std::unique_ptr<DiskIndex>> index = DiskIndex::Build(src, "", plain);
  ASSERT_TRUE(index.ok());
  const DiskIndex::TermInfo* apple = (*index)->FindTerm("apple");
  Result<DiskIndex::PostingCursor> cursor = (*index)->OpenPostings(apple->id);
  ASSERT_TRUE(cursor.ok());
  std::vector<DeweyId> got;
  DeweyId id;
  while (cursor->Next(&id)) got.push_back(id);
  EXPECT_EQ(got, src.Materialize("apple"));
}

TEST(DiskIndexTest, CompressionShrinksIndex) {
  DblpOptions gen;
  gen.papers = 3000;
  gen.plants.push_back({"planted", 500});
  Result<Document> doc = GenerateDblp(gen);
  ASSERT_TRUE(doc.ok());
  InvertedIndex src = InvertedIndex::Build(*doc);

  Result<std::unique_ptr<DiskIndex>> compressed =
      DiskIndex::Build(src, "", MemOptions());
  DiskIndexOptions plain_opts = MemOptions();
  plain_opts.compress_dewey = false;
  plain_opts.delta_compress = false;
  Result<std::unique_ptr<DiskIndex>> plain =
      DiskIndex::Build(src, "", plain_opts);
  ASSERT_TRUE(compressed.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_LT((*compressed)->il_page_count(), (*plain)->il_page_count());
  EXPECT_LE((*compressed)->scan_page_count(), (*plain)->scan_page_count());
}

TEST(DiskIndexTest, OpenInMemoryRejected) {
  EXPECT_TRUE(DiskIndex::Open("", MemOptions()).status().IsInvalidArgument());
}

TEST(DiskIndexTest, EmptyIndexBuilds) {
  InvertedIndex empty;
  Result<std::unique_ptr<DiskIndex>> index =
      DiskIndex::Build(empty, "", MemOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->term_count(), 0u);
}

}  // namespace
}  // namespace xksearch
