#include "slca/parallel.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/search_types.h"
#include "engine/xksearch.h"
#include "gen/random_tree.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "serve/thread_pool.h"
#include "slca/keyword_list.h"
#include "slca/packed_list.h"
#include "slca/slca.h"
#include "storage/disk_index.h"
#include "test_util.h"

namespace xksearch {
namespace {

using internal::ChunkOutput;
using internal::Stitcher;
using testing_util::Id;
using testing_util::Ids;
using testing_util::Strings;

TEST(ParallelSlcaBudgetTest, TokensAcquireAndRelease) {
  ConcurrencyBudget budget(2);
  EXPECT_EQ(budget.available(), 2u);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
  EXPECT_EQ(budget.available(), 0u);
  budget.Release();
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
}

TEST(ParallelSlcaBudgetTest, ZeroTokensNeverAcquire) {
  ConcurrencyBudget budget(0);
  EXPECT_FALSE(budget.TryAcquire());
  budget.Release();
  EXPECT_TRUE(budget.TryAcquire());
}

void ExpectTiling(const std::vector<std::pair<uint64_t, uint64_t>>& chunks,
                  uint64_t units, size_t max_chunks, uint64_t min_units) {
  ASSERT_GE(chunks.size(), 2u);
  EXPECT_LE(chunks.size(), max_chunks);
  uint64_t next = 0;
  uint64_t smallest = ~uint64_t{0};
  uint64_t largest = 0;
  for (const auto& [begin, count] : chunks) {
    EXPECT_EQ(begin, next);
    EXPECT_GE(count, min_units);
    smallest = std::min(smallest, count);
    largest = std::max(largest, count);
    next = begin + count;
  }
  EXPECT_EQ(next, units);
  EXPECT_LE(largest - smallest, 1u);
}

TEST(ParallelSlcaPartitionTest, SplitsTileAndRespectMinimum) {
  ExpectTiling(PartitionUnits(10, 4, 1), 10, 4, 1);
  ExpectTiling(PartitionUnits(10, 4, 5), 10, 4, 5);
  ExpectTiling(PartitionUnits(3, 8, 1), 3, 8, 1);
  ExpectTiling(PartitionUnits(1000, 7, 1), 1000, 7, 1);
}

TEST(ParallelSlcaPartitionTest, NoRealSplitReturnsEmpty) {
  EXPECT_TRUE(PartitionUnits(0, 4, 1).empty());
  EXPECT_TRUE(PartitionUnits(1, 4, 1).empty());
  EXPECT_TRUE(PartitionUnits(10, 1, 1).empty());
  EXPECT_TRUE(PartitionUnits(10, 4, 10).empty());
  EXPECT_TRUE(PartitionUnits(10, 4, 100).empty());
}

// Drives the stitcher with hand-built chunk outputs and returns the
// emitted sequence.
std::vector<DeweyId> Stitch(size_t block_size,
                            const std::vector<ChunkOutput>& chunks,
                            QueryStats* stats) {
  std::vector<DeweyId> got;
  ResultCallback emit = [&](const DeweyId& id) { got.push_back(id); };
  Stitcher stitcher(block_size, stats, emit);
  for (const ChunkOutput& chunk : chunks) stitcher.Add(chunk);
  stitcher.Finish();
  return got;
}

ChunkOutput MakeChunk(const std::vector<std::string>& confirmed,
                      const std::string& pending) {
  ChunkOutput out;
  out.confirmed = Ids(confirmed);
  if (!pending.empty()) {
    out.pending = Id(pending);
    out.has_pending = true;
  }
  return out;
}

TEST(ParallelSlcaStitcherTest, FinalPendingAlwaysEmitted) {
  QueryStats stats;
  const std::vector<DeweyId> got =
      Stitch(1, {MakeChunk({"0.0"}, "0.1")}, &stats);
  EXPECT_EQ(Strings(got), Strings(Ids({"0.0", "0.1"})));
  EXPECT_EQ(stats.results.load(), 2u);
}

TEST(ParallelSlcaStitcherTest, SeamAncestorPendingIsDiscarded) {
  // Chunk 0 ends with candidate 0.0; chunk 1's first survivor 0.0.1 is
  // its descendant, so Lemma 2 refutes 0.0 at the seam.
  QueryStats stats;
  const std::vector<DeweyId> got =
      Stitch(1, {MakeChunk({}, "0.0"), MakeChunk({"0.0.1"}, "0.2")}, &stats);
  EXPECT_EQ(Strings(got), Strings(Ids({"0.0.1", "0.2"})));
  EXPECT_EQ(stats.results.load(), 2u);
}

TEST(ParallelSlcaStitcherTest, SeamNonAncestorPendingIsConfirmed) {
  QueryStats stats;
  const std::vector<DeweyId> got =
      Stitch(1, {MakeChunk({}, "0.0"), MakeChunk({"0.1"}, "0.2")}, &stats);
  EXPECT_EQ(Strings(got), Strings(Ids({"0.0", "0.1", "0.2"})));
}

TEST(ParallelSlcaStitcherTest, SeamDropsLocallyConfirmedUnderestimates) {
  // Chunk 1 locally confirmed 0.2, but chunk 0's candidate 0.5 shows the
  // true running maximum was larger: Lemma 1 across the seam drops it.
  QueryStats stats;
  const std::vector<DeweyId> got =
      Stitch(1, {MakeChunk({}, "0.5"), MakeChunk({"0.2"}, "0.6")}, &stats);
  EXPECT_EQ(Strings(got), Strings(Ids({"0.5", "0.6"})));
}

TEST(ParallelSlcaStitcherTest, SeamKeepsLargerPendingOverSmallerPending) {
  // A whole chunk can be swallowed by the previous candidate: its pending
  // is <= the running candidate, which must survive unchanged.
  QueryStats stats;
  const std::vector<DeweyId> got =
      Stitch(1, {MakeChunk({}, "0.5"), MakeChunk({}, "0.5")}, &stats);
  EXPECT_EQ(Strings(got), Strings(Ids({"0.5"})));
  EXPECT_EQ(stats.results.load(), 1u);
}

TEST(ParallelSlcaStitcherTest, BlockSizeBatchesButNeverChangesTheSet) {
  for (size_t block : {0u, 1u, 3u, 64u}) {
    QueryStats stats;
    const std::vector<DeweyId> got = Stitch(
        block,
        {MakeChunk({"0.0", "0.1"}, "0.2"), MakeChunk({"0.3"}, "0.4")}, &stats);
    EXPECT_EQ(Strings(got), Strings(Ids({"0.0", "0.1", "0.2", "0.3", "0.4"})))
        << "block=" << block;
    EXPECT_EQ(stats.results.load(), 5u);
  }
}

enum class Layout { kVector, kPacked, kDisk };

std::string ToString(Layout layout) {
  switch (layout) {
    case Layout::kVector:
      return "vector";
    case Layout::kPacked:
      return "packed";
    case Layout::kDisk:
      return "disk";
  }
  return "?";
}

/// One random collection plus adapters over every storage layout. The
/// document is large enough that packed skip-table blocks (32 entries)
/// and disk scan blocks (tiny scan_block_bytes below) both split into
/// many chunkable units.
class ParallelSlcaFixture {
 public:
  explicit ParallelSlcaFixture(uint64_t seed, size_t node_count = 1500,
                               size_t vocab = 3) {
    Rng rng(seed);
    RandomTreeOptions options;
    options.node_count = node_count;
    options.vocab_size = vocab;
    doc_ = GenerateRandomDocument(&rng, options);
    index_ = std::make_unique<InvertedIndex>(InvertedIndex::Build(doc_));
    DiskIndexOptions disk_options;
    disk_options.in_memory = true;
    disk_options.scan_block_bytes = 64;
    Result<std::unique_ptr<DiskIndex>> disk =
        DiskIndex::Build(*index_, "", disk_options);
    EXPECT_TRUE(disk.ok()) << disk.status().ToString();
    disk_ = disk.MoveValueUnsafe();
    for (const std::string& kw : RandomTreeVocabulary(options)) {
      keywords_.push_back(kw);
      materialized_.push_back(index_->Materialize(kw));
    }
  }

  // Builds fresh per-run adapters (lists are stateful: probe hints,
  // charged stats), ordered smallest-first like the query engine.
  std::vector<std::unique_ptr<KeywordList>> MakeLists(
      Layout layout, const std::vector<size_t>& terms, QueryStats* stats) {
    std::vector<std::unique_ptr<KeywordList>> lists;
    for (size_t t : terms) lists.push_back(MakeList(layout, t, stats));
    // Ascending size, so lists[0] (the chunked list) is S1 like the
    // query engine arranges it.
    std::stable_sort(lists.begin(), lists.end(),
                     [](const std::unique_ptr<KeywordList>& a,
                        const std::unique_ptr<KeywordList>& b) {
                       return a->size() < b->size();
                     });
    return lists;
  }

  std::unique_ptr<KeywordList> MakeList(Layout layout, size_t term,
                                        QueryStats* stats) {
    switch (layout) {
      case Layout::kVector:
        return std::make_unique<VectorKeywordList>(&materialized_[term],
                                                   stats);
      case Layout::kPacked:
        return std::make_unique<PackedKeywordList>(
            index_->Find(keywords_[term]), stats);
      case Layout::kDisk: {
        const DiskIndex::TermInfo* info = disk_->FindTerm(keywords_[term]);
        EXPECT_NE(info, nullptr);
        return std::make_unique<DiskKeywordList>(disk_.get(), info->id,
                                                 info->frequency, stats);
      }
    }
    return nullptr;
  }

  const std::vector<DeweyId>& list(size_t term) const {
    return materialized_[term];
  }
  size_t terms() const { return keywords_.size(); }

 private:
  Document doc_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<DiskIndex> disk_;
  std::vector<std::string> keywords_;
  std::vector<std::vector<DeweyId>> materialized_;
};

std::vector<DeweyId> Drain(KeywordListIterator* iter) {
  std::vector<DeweyId> out;
  DeweyId id;
  while (iter->Next(&id)) out.push_back(id);
  EXPECT_TRUE(iter->status().ok()) << iter->status().ToString();
  return out;
}

// Chunk iterators concatenated in order must reproduce the full list on
// every layout, and each chunk's `first` must match its actual front.
TEST(ParallelSlcaChunkPlanTest, ChunksTileTheListOnEveryLayout) {
  ParallelSlcaFixture fx(41);
  for (Layout layout : {Layout::kVector, Layout::kPacked, Layout::kDisk}) {
    for (size_t chunks : {2u, 3u, 8u}) {
      QueryStats stats;
      std::unique_ptr<KeywordList> list = fx.MakeList(layout, 0, &stats);
      Result<std::vector<ListChunk>> plan = list->PlanChunks(chunks, 1);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      if (plan->size() <= 1) continue;  // too few blocks to split this far
      EXPECT_LE(plan->size(), chunks);
      std::vector<DeweyId> stitched;
      for (const ListChunk& chunk : *plan) {
        Result<std::unique_ptr<KeywordListIterator>> iter =
            list->NewChunkIterator(chunk);
        ASSERT_TRUE(iter.ok()) << iter.status().ToString();
        const std::vector<DeweyId> part = Drain(iter->get());
        ASSERT_FALSE(part.empty());
        EXPECT_EQ(part.front(), chunk.first)
            << ToString(layout) << " chunks=" << chunks;
        stitched.insert(stitched.end(), part.begin(), part.end());
      }
      EXPECT_EQ(Strings(stitched), Strings(fx.list(0)))
          << ToString(layout) << " chunks=" << chunks;
    }
  }
}

// NewIteratorAt(start) must position exactly where a sequential forward
// scan would stand after passing `start`: prev = greatest element <
// start, front = first element >= start, suffix identical. Probed at
// every list element and at synthetic mid-gap ids.
TEST(ParallelSlcaSeekTest, IteratorAtMatchesSequentialCursorState) {
  ParallelSlcaFixture fx(42, /*node_count=*/400);
  const std::vector<DeweyId>& ids = fx.list(0);
  ASSERT_GE(ids.size(), 10u);
  std::vector<DeweyId> probes = ids;
  for (const DeweyId& id : ids) {
    // A child of a list element sorts between it and its successor.
    probes.push_back(Id(id.ToString() + ".0"));
  }
  for (Layout layout : {Layout::kVector, Layout::kPacked, Layout::kDisk}) {
    QueryStats stats;
    std::unique_ptr<KeywordList> list = fx.MakeList(layout, 0, &stats);
    for (const DeweyId& probe : probes) {
      const auto lower = std::lower_bound(ids.begin(), ids.end(), probe);
      DeweyId prev;
      bool prev_valid = false;
      Result<std::unique_ptr<KeywordListIterator>> iter =
          list->NewIteratorAt(probe, &prev, &prev_valid);
      ASSERT_TRUE(iter.ok()) << iter.status().ToString();
      // On an exact hit implementations may skip the predecessor (the
      // hit itself pins any regressed probe target); otherwise it is
      // mandatory whenever one exists.
      const bool exact = lower != ids.end() && *lower == probe;
      if (!exact) {
        EXPECT_EQ(prev_valid, lower != ids.begin())
            << ToString(layout) << " probe=" << probe.ToString();
      }
      if (prev_valid) {
        ASSERT_NE(lower, ids.begin()) << ToString(layout);
        EXPECT_EQ(prev, *(lower - 1)) << ToString(layout);
      }
      const std::vector<DeweyId> suffix = Drain(iter->get());
      EXPECT_EQ(Strings(suffix),
                Strings(std::vector<DeweyId>(lower, ids.end())))
          << ToString(layout) << " probe=" << probe.ToString();
    }
  }
}

struct ParityCase {
  uint64_t seed;
  SlcaAlgorithm algorithm;
  Layout layout;
};

std::string ParityName(const ::testing::TestParamInfo<ParityCase>& info) {
  std::string algo = ToString(info.param.algorithm);
  std::replace(algo.begin(), algo.end(), ' ', '_');
  std::replace(algo.begin(), algo.end(), '-', '_');
  return "seed" + std::to_string(info.param.seed) + "_" + algo + "_" +
         ToString(info.param.layout);
}

class ParallelSlcaParityTest : public ::testing::TestWithParam<ParityCase> {};

// The contract the fuzzer also enforces: at every block size x chunk
// count, the chunked run reproduces the sequential run's exact result
// sequence (document order, duplicate-free) and its match_ops / results
// counters.
TEST_P(ParallelSlcaParityTest, ChunkedMatchesSequential) {
  const ParityCase& param = GetParam();
  ParallelSlcaFixture fx(param.seed);
  serve::ThreadPool::Options pool_options;
  pool_options.workers = 3;
  serve::ThreadPool pool(pool_options);
  ConcurrencyBudget budget(3);

  const std::vector<std::vector<size_t>> queries = {{0, 1}, {0, 1, 2}, {2, 2}};
  for (const std::vector<size_t>& terms : queries) {
    for (size_t block : {1u, 3u, 64u}) {
      SlcaOptions slca_options;
      slca_options.block_size = block;

      QueryStats seq_stats;
      std::vector<std::unique_ptr<KeywordList>> seq_owned =
          fx.MakeLists(param.layout, terms, &seq_stats);
      std::vector<KeywordList*> seq_lists;
      for (const auto& l : seq_owned) seq_lists.push_back(l.get());
      std::vector<DeweyId> expected;
      XKS_ASSERT_OK(ComputeSlca(
          param.algorithm, seq_lists, slca_options, &seq_stats,
          [&](const DeweyId& id) { expected.push_back(id); }));

      // Document order and duplicate-freedom of the baseline itself.
      for (size_t i = 1; i < expected.size(); ++i) {
        ASSERT_TRUE(expected[i - 1] < expected[i]);
      }

      for (size_t chunks : {1u, 2u, 3u, 8u}) {
        QueryStats stats;
        std::vector<std::unique_ptr<KeywordList>> owned =
            fx.MakeLists(param.layout, terms, &stats);
        std::vector<KeywordList*> lists;
        for (const auto& l : owned) lists.push_back(l.get());
        ParallelExecOptions exec;
        exec.pool = &pool;
        exec.budget = &budget;
        exec.max_chunks = chunks;
        exec.min_chunk_elements = 1;
        std::vector<DeweyId> got;
        const uint64_t tasks_before = pool.tasks_run();
        XKS_ASSERT_OK(ComputeSlcaParallel(
            param.algorithm, lists, slca_options, exec, &stats,
            [&](const DeweyId& id) { got.push_back(id); }));
        if (chunks >= 2) {
          // Parity must not hold vacuously: with multiple chunks allowed
          // and a one-element minimum, at least one chunk has to have run
          // on the pool (the coordinator waits for every submitted task
          // before returning, so the counter is settled here).
          EXPECT_GT(pool.tasks_run(), tasks_before)
              << "block=" << block << " chunks=" << chunks;
        } else {
          EXPECT_EQ(pool.tasks_run(), tasks_before);
        }
        EXPECT_EQ(Strings(got), Strings(expected))
            << "block=" << block << " chunks=" << chunks;
        EXPECT_EQ(stats.match_ops.load(), seq_stats.match_ops.load())
            << "block=" << block << " chunks=" << chunks;
        EXPECT_EQ(stats.results.load(), seq_stats.results.load())
            << "block=" << block << " chunks=" << chunks;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndAlgorithms, ParallelSlcaParityTest,
    ::testing::Values(
        ParityCase{11, SlcaAlgorithm::kIndexedLookupEager, Layout::kVector},
        ParityCase{11, SlcaAlgorithm::kIndexedLookupEager, Layout::kPacked},
        ParityCase{11, SlcaAlgorithm::kIndexedLookupEager, Layout::kDisk},
        ParityCase{11, SlcaAlgorithm::kScanEager, Layout::kVector},
        ParityCase{11, SlcaAlgorithm::kScanEager, Layout::kPacked},
        ParityCase{11, SlcaAlgorithm::kScanEager, Layout::kDisk},
        ParityCase{23, SlcaAlgorithm::kIndexedLookupEager, Layout::kDisk},
        ParityCase{23, SlcaAlgorithm::kScanEager, Layout::kDisk}),
    ParityName);

// End to end through the engine: SearchOptions::slca_exec must change
// nothing observable about the answer.
TEST(ParallelSlcaEngineTest, SearchMatchesSequentialOnBothPaths) {
  Rng rng(77);
  RandomTreeOptions tree;
  tree.node_count = 1200;
  tree.vocab_size = 3;
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  build.disk.scan_block_bytes = 64;
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(GenerateRandomDocument(&rng, tree), build);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  serve::ThreadPool::Options pool_options;
  pool_options.workers = 3;
  serve::ThreadPool pool(pool_options);
  ConcurrencyBudget budget(3);

  for (AlgorithmChoice algorithm : {AlgorithmChoice::kIndexedLookupEager,
                                    AlgorithmChoice::kScanEager}) {
    for (bool disk : {false, true}) {
      for (size_t block : {1u, 3u, 64u}) {
        SearchOptions options;
        options.algorithm = algorithm;
        options.use_disk_index = disk;
        options.block_size = block;
        Result<SearchResult> sequential =
            (*system)->Search({"w0", "w1"}, options);
        ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
        for (size_t chunks : {2u, 3u, 8u}) {
          SearchOptions chunked = options;
          chunked.slca_exec.pool = &pool;
          chunked.slca_exec.budget = &budget;
          chunked.slca_exec.max_chunks = chunks;
          chunked.slca_exec.min_chunk_elements = 1;
          const uint64_t tasks_before = pool.tasks_run();
          Result<SearchResult> got = (*system)->Search({"w0", "w1"}, chunked);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          // The engine must have reached the chunked executor: at least
          // one chunk ran on the pool (equality here would mean the
          // parity assertions below compare the sequential path with
          // itself).
          EXPECT_GT(pool.tasks_run(), tasks_before)
              << "disk=" << disk << " block=" << block
              << " chunks=" << chunks;
          EXPECT_EQ(Strings(got->nodes), Strings(sequential->nodes))
              << "disk=" << disk << " block=" << block
              << " chunks=" << chunks;
          EXPECT_EQ(got->stats.match_ops.load(),
                    sequential->stats.match_ops.load());
          EXPECT_EQ(got->stats.results.load(),
                    sequential->stats.results.load());
        }
      }
    }
  }
}

// slca_exec is execution config, not a semantic option: options that
// differ only in it must compare equal and hash identically, so cached
// results stay valid across executor configurations.
TEST(ParallelSlcaEngineTest, ExecOptionsAreNotPartOfTheCacheKey) {
  serve::ThreadPool::Options pool_options;
  pool_options.workers = 1;
  serve::ThreadPool pool(pool_options);
  SearchOptions plain;
  SearchOptions chunked;
  chunked.slca_exec.pool = &pool;
  chunked.slca_exec.max_chunks = 8;
  chunked.slca_exec.min_chunk_elements = 1;
  EXPECT_TRUE(plain == chunked);
  EXPECT_EQ(SearchOptionsHash{}(plain), SearchOptionsHash{}(chunked));
  SearchOptions different = plain;
  different.block_size = 9;
  EXPECT_FALSE(plain == different);
}

}  // namespace
}  // namespace xksearch
