#include "engine/disk_searcher.h"

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "gen/random_tree.h"
#include "gen/school.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Strings;

class DiskSearcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = testing_util::UniqueTempPrefix("disk_searcher_idx");
    XKSearch::BuildOptions build;
    build.build_disk_index = true;
    build.disk_path_prefix = prefix_;
    Result<std::unique_ptr<XKSearch>> system =
        XKSearch::BuildFromDocument(BuildSchoolDocument(), build);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = std::move(*system);
  }

  void TearDown() override {
    for (const char* suffix : {".il", ".scan", ".dict"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  std::string prefix_;
  std::unique_ptr<XKSearch> system_;
};

TEST_F(DiskSearcherTest, ReopenedIndexAnswersQueries) {
  // Drop the full engine; only the files remain.
  system_.reset();
  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix_);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  Result<SearchResult> result = (*searcher)->Search({"John", "Ben"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Strings(result->nodes),
            (std::vector<std::string>{"0.0.0", "0.0.1", "0.1.0.1"}));
  EXPECT_EQ((*searcher)->Frequency("john"), 4u);
  EXPECT_EQ((*searcher)->Frequency("nothere"), 0u);
}

TEST_F(DiskSearcherTest, AgreesWithFullEngineOnAllSemantics) {
  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix_);
  ASSERT_TRUE(searcher.ok());
  for (Semantics semantics :
       {Semantics::kSlca, Semantics::kElca, Semantics::kAllLca}) {
    SearchOptions options;
    options.semantics = semantics;
    Result<SearchResult> expected = system_->Search({"john", "ben"}, options);
    Result<SearchResult> got = (*searcher)->Search({"john", "ben"}, options);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Strings(got->nodes), Strings(expected->nodes))
        << static_cast<int>(semantics);
  }
}

TEST_F(DiskSearcherTest, MissingKeywordAndErrors) {
  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix_);
  ASSERT_TRUE(searcher.ok());
  Result<SearchResult> empty = (*searcher)->Search({"john", "qqq"});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->nodes.empty());
  EXPECT_TRUE((*searcher)->Search({}).status().IsInvalidArgument());
  EXPECT_TRUE((*searcher)->Search({"..."}).status().IsInvalidArgument());
}

TEST_F(DiskSearcherTest, OpenMissingFilesFails) {
  EXPECT_TRUE(DiskSearcher::Open(::testing::TempDir() + "/no_such_prefix")
                  .status()
                  .IsIoError());
}

TEST_F(DiskSearcherTest, StatsCountDiskWork) {
  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix_);
  ASSERT_TRUE(searcher.ok());
  Result<SearchResult> result = (*searcher)->Search({"john", "ben"});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.page_reads + result->stats.page_hits, 0u);
}

TEST(DiskSearcherRandomTest, ParityWithEngineOnRandomDocuments) {
  const std::string prefix = ::testing::TempDir() + "/disk_searcher_rand";
  Rng rng(808);
  RandomTreeOptions options;
  options.node_count = 600;
  options.vocab_size = 5;
  for (int round = 0; round < 5; ++round) {
    XKSearch::BuildOptions build;
    build.build_disk_index = true;
    build.disk_path_prefix = prefix;
    Result<std::unique_ptr<XKSearch>> system = XKSearch::BuildFromDocument(
        GenerateRandomDocument(&rng, options), build);
    ASSERT_TRUE(system.ok());
    Result<std::unique_ptr<DiskSearcher>> searcher =
        DiskSearcher::Open(prefix);
    ASSERT_TRUE(searcher.ok());
    const std::vector<std::string> vocab = RandomTreeVocabulary(options);
    for (int q = 0; q < 5; ++q) {
      const std::vector<std::string> query = {
          vocab[rng.Uniform(vocab.size())], vocab[rng.Uniform(vocab.size())]};
      Result<SearchResult> expected = (*system)->Search(query);
      Result<SearchResult> got = (*searcher)->Search(query);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Strings(got->nodes), Strings(expected->nodes));
    }
  }
  for (const char* suffix : {".il", ".scan", ".dict"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(DiskSearcherTokenizerTest, CaseSensitiveIndexNormalizesConsistently) {
  // Build a case-sensitive index; the persisted tokenizer options must
  // make the reopened searcher treat "John" and "john" as different.
  const std::string prefix = ::testing::TempDir() + "/disk_searcher_case";
  XKSearch::BuildOptions build;
  build.index.tokenizer.lowercase = false;
  build.build_disk_index = true;
  build.disk_path_prefix = prefix;
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument(), build);
  ASSERT_TRUE(system.ok());
  system->reset();

  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix);
  ASSERT_TRUE(searcher.ok());
  // The document says "John"; a case-sensitive index has no "john".
  EXPECT_EQ((*searcher)->Frequency("John"), 4u);
  EXPECT_EQ((*searcher)->Frequency("john"), 0u);
  Result<SearchResult> hit = (*searcher)->Search({"John", "Ben"});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->nodes.size(), 3u);
  Result<SearchResult> miss = (*searcher)->Search({"john", "ben"});
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->nodes.empty());
  for (const char* suffix : {".il", ".scan", ".dict"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(DiskSearcherSnippetTest, PersistedDocumentEnablesSnippets) {
  const std::string prefix = ::testing::TempDir() + "/disk_searcher_snip";
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk_path_prefix = prefix;
  build.persist_document = true;
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument(), build);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  system->reset();

  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  EXPECT_TRUE((*searcher)->has_document());
  Result<SearchResult> result = (*searcher)->Search({"john", "ben"});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->nodes.empty());
  Result<std::string> snippet = (*searcher)->Snippet(result->nodes[0]);
  ASSERT_TRUE(snippet.ok()) << snippet.status().ToString();
  EXPECT_NE(snippet->find("John"), std::string::npos);
  EXPECT_NE(snippet->find("Ben"), std::string::npos);
  // Truncation works through the same path.
  Result<std::string> cut = (*searcher)->Snippet(result->nodes[0], 20);
  ASSERT_TRUE(cut.ok());
  EXPECT_LT(cut->size(), snippet->size() + 16);
  for (const char* suffix : {".il", ".scan", ".dict", ".xml"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(DiskSearcherSnippetTest, WithoutPersistedDocumentNotSupported) {
  const std::string prefix = ::testing::TempDir() + "/disk_searcher_nosnip";
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk_path_prefix = prefix;
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument(), build);
  ASSERT_TRUE(system.ok());
  system->reset();

  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix);
  ASSERT_TRUE(searcher.ok());
  EXPECT_FALSE((*searcher)->has_document());
  EXPECT_TRUE((*searcher)
                  ->Snippet(testing_util::Id("0"))
                  .status()
                  .IsNotSupported());
  for (const char* suffix : {".il", ".scan", ".dict"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(DiskSearcherSnippetTest, PersistRequiresFileBackedIndex) {
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  build.persist_document = true;
  EXPECT_TRUE(XKSearch::BuildFromDocument(BuildSchoolDocument(), build)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace xksearch
