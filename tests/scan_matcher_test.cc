// Targeted tests for the Scan Eager cursor subtlety: probe targets into
// a list are not monotone in document order — a later chain value can be
// an *ancestor* of an earlier probe (its Dewey id sorts before it). The
// forward-only cursor stays correct because a passed element that lies
// inside the new target's subtree pins the match-step result to the
// target itself. These cases force that branch explicitly and check
// Scan Eager against Indexed Lookup on the same lists.

#include <memory>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "slca/brute_force.h"
#include "slca/keyword_list.h"
#include "slca/slca.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Ids;
using testing_util::Strings;

std::vector<DeweyId> RunAlgorithm(
    SlcaAlgorithm algorithm, const std::vector<std::vector<DeweyId>>& lists) {
  QueryStats stats;
  std::vector<std::unique_ptr<KeywordList>> owned;
  std::vector<KeywordList*> ptrs;
  for (const auto& list : lists) {
    owned.push_back(std::make_unique<VectorKeywordList>(&list, &stats));
    ptrs.push_back(owned.back().get());
  }
  Result<std::vector<DeweyId>> got =
      ComputeSlcaList(algorithm, ptrs, {}, &stats);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  return got.ok() ? got.ValueOrDie() : std::vector<DeweyId>{};
}

void ExpectScanMatchesIndexedLookup(
    const std::vector<std::vector<DeweyId>>& lists) {
  EXPECT_EQ(
      Strings(RunAlgorithm(SlcaAlgorithm::kScanEager, lists)),
      Strings(RunAlgorithm(SlcaAlgorithm::kIndexedLookupEager, lists)));
  EXPECT_EQ(Strings(RunAlgorithm(SlcaAlgorithm::kScanEager, lists)),
            Strings(BruteForceSlca(lists)));
}

TEST(ScanMatcherTest, ProbeRegressesToAncestorAfterDeepChain) {
  // k=3. For v1=0.0.1 the chain stays deep (probe into S3 is 0.0);
  // for v2=0.5 the S2 step yields the root (its matches are far away),
  // so the S3 probe regresses from 0.0 to 0 — an ancestor.
  const auto s1 = Ids({"0.0.1", "0.5"});
  const auto s2 = Ids({"0.0.2", "0.9"});
  const auto s3 = Ids({"0.0.3"});
  ExpectScanMatchesIndexedLookup({s1, s2, s3});
}

TEST(ScanMatcherTest, PassedElementInsideRegressedTargetSubtree) {
  // First probe 0.2.9 passes the element 0.2.5; the next probe is 0.2
  // (an ancestor of the first). The passed 0.2.5 lies inside
  // subtree(0.2), which must pin the step result to 0.2 itself.
  const auto s1 = Ids({"0.2.9", "0.3"});   // S1 drives the probes
  const auto s2 = Ids({"0.2.5"});
  // Chain for 0.2.9 probes S2 at 0.2.9 -> lm=0.2.5, lca=0.2. Chain for
  // 0.3 probes S2 at 0.3 -> lm=0.2.5 -> lca=0. SLCA = {0.2}.
  ExpectScanMatchesIndexedLookup({s2, s1});
  ExpectScanMatchesIndexedLookup({s1, s2});
}

TEST(ScanMatcherTest, CursorDoesNotLeakForwardState) {
  // After the cursor ran to the end of the list for an early probe, a
  // regressed later probe must not fabricate a right match.
  const auto s1 = Ids({"0.8", "0.9"});
  const auto s2 = Ids({"0.1"});
  ExpectScanMatchesIndexedLookup({s1, s2});
}

TEST(ScanMatcherTest, EqualTargetHitsExactElement) {
  // The probe equals a list element exactly: lca(x, x) = x.
  const auto s1 = Ids({"0.4"});
  const auto s2 = Ids({"0.4", "0.6"});
  ExpectScanMatchesIndexedLookup({s1, s2});
}

TEST(ScanMatcherTest, AdversarialRandomChains) {
  // Dense random lists over a skinny deep tree maximize regressions.
  Rng rng(4242);
  for (int round = 0; round < 200; ++round) {
    const size_t k = 2 + rng.Uniform(3);
    std::vector<std::vector<DeweyId>> lists(k);
    for (auto& list : lists) {
      std::vector<DeweyId> ids;
      const size_t n = 1 + rng.Uniform(10);
      for (size_t i = 0; i < n; ++i) {
        std::vector<uint32_t> comps = {0};
        const size_t depth = 1 + rng.Uniform(5);
        for (size_t d = 0; d < depth; ++d) {
          comps.push_back(static_cast<uint32_t>(rng.Uniform(3)));
        }
        ids.emplace_back(std::move(comps));
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      list = std::move(ids);
    }
    const std::vector<DeweyId> expected = BruteForceSlca(lists);
    EXPECT_EQ(Strings(RunAlgorithm(SlcaAlgorithm::kScanEager, lists)),
              Strings(expected))
        << "round " << round;
  }
}

TEST(DeweyOrderTest, ExhaustiveSmallSpaceTotalOrder) {
  // Enumerate every Dewey id of depth <= 3 with components in {0,1,2}
  // rooted at 0 and verify comparison is a strict total order consistent
  // with ancestor/descendant structure and the LCA operation.
  std::vector<DeweyId> ids;
  ids.push_back(DeweyId({0}));
  for (uint32_t a = 0; a < 3; ++a) {
    ids.push_back(DeweyId({0, a}));
    for (uint32_t b = 0; b < 3; ++b) {
      ids.push_back(DeweyId({0, a, b}));
    }
  }
  for (const DeweyId& x : ids) {
    EXPECT_EQ(x.Compare(x), 0);
    for (const DeweyId& y : ids) {
      const int xy = x.Compare(y);
      EXPECT_EQ(xy, -y.Compare(x));
      if (x.IsAncestorOf(y)) {
        EXPECT_LT(xy, 0);  // ancestors precede descendants
        EXPECT_EQ(x.Lca(y), x);
      }
      for (const DeweyId& z : ids) {
        // Transitivity.
        if (xy < 0 && y.Compare(z) < 0) {
          EXPECT_LT(x.Compare(z), 0);
        }
        // lca(x,z) and lca(y,z) are comparable ancestors of z.
        const DeweyId a = x.Lca(z);
        const DeweyId b = y.Lca(z);
        EXPECT_TRUE(a.IsAncestorOrSelf(b) || b.IsAncestorOrSelf(a));
      }
    }
  }
}

}  // namespace
}  // namespace xksearch
