#include "dewey/codec.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Ids;

int CompareEncodings(const std::vector<uint8_t>& a,
                     const std::vector<uint8_t>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

TEST(LevelTableTest, ObserveTracksMaxWidths) {
  LevelTable table;
  table.Observe(Id("0.3.1"));
  table.Observe(Id("0.1.7.2"));
  // Width = bit width of the max component plus one spare bit for probe
  // saturation: level 0 max 0 -> 1; level 1 max 3 -> 3; level 2 max 7 ->
  // 4; level 3 max 2 -> 3.
  EXPECT_EQ(table.BitsAt(0), 1);
  EXPECT_EQ(table.BitsAt(1), 3);
  EXPECT_EQ(table.BitsAt(2), 4);
  EXPECT_EQ(table.BitsAt(3), 3);
  // Beyond observed depth: safe fallback of 32 bits.
  EXPECT_EQ(table.BitsAt(9), 32);
  EXPECT_EQ(table.TotalBits(), 11u);
}

TEST(LevelTableTest, SerializationRoundTrip) {
  LevelTable table;
  table.Observe(Id("0.100.5.1"));
  std::vector<uint8_t> buf;
  table.EncodeTo(&buf);
  size_t pos = 0;
  Result<LevelTable> decoded = LevelTable::DecodeFrom(buf.data(), buf.size(), &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->bits(), table.bits());
  EXPECT_EQ(pos, buf.size());
}

TEST(LevelTableTest, DecodeRejectsCorruption) {
  std::vector<uint8_t> buf = {3, 1, 2};  // claims 3 entries, has 2
  size_t pos = 0;
  EXPECT_TRUE(
      LevelTable::DecodeFrom(buf.data(), buf.size(), &pos).status().IsCorruption());
  std::vector<uint8_t> wide = {1, 40};  // width 40 > 32
  pos = 0;
  EXPECT_TRUE(LevelTable::DecodeFrom(wide.data(), wide.size(), &pos)
                  .status()
                  .IsCorruption());
}

TEST(DeweyCodecTest, EncodeDecodeRoundTrip) {
  LevelTable table;
  const auto ids = Ids({"0", "0.5", "0.5.3", "0.2.7.1", "0.0.0.0.0"});
  for (const DeweyId& id : ids) table.Observe(id);
  DeweyCodec codec(table);
  for (const DeweyId& id : ids) {
    Result<DeweyId> decoded = codec.Decode(codec.Encode(id));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, id) << id.ToString();
  }
}

TEST(DeweyCodecTest, UncompressedCodecAlsoRoundTrips) {
  DeweyCodec codec((LevelTable()));  // all levels 32 bits
  for (const DeweyId& id : Ids({"0", "0.4000000000", "0.1.2.3.4.5"})) {
    Result<DeweyId> decoded = codec.Decode(codec.Encode(id));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, id);
  }
}

TEST(DeweyCodecTest, CompressionBeatsFixedWidth) {
  LevelTable table;
  std::vector<DeweyId> ids;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    ids.push_back(DeweyId({0, static_cast<uint32_t>(rng.Uniform(8)),
                           static_cast<uint32_t>(rng.Uniform(4)),
                           static_cast<uint32_t>(rng.Uniform(16))}));
    table.Observe(ids.back());
  }
  DeweyCodec compressed(table);
  DeweyCodec fixed((LevelTable()));
  size_t c = 0, f = 0;
  for (const DeweyId& id : ids) {
    c += compressed.Encode(id).size();
    f += fixed.Encode(id).size();
  }
  EXPECT_LT(c, f / 3);  // the level table should save a lot here
}

TEST(DeweyCodecTest, DecodeRejectsTruncation) {
  LevelTable table;
  table.Observe(Id("0.1000.1000"));
  DeweyCodec codec(table);
  std::vector<uint8_t> enc = codec.Encode(Id("0.900.900"));
  enc.pop_back();
  EXPECT_TRUE(codec.Decode(enc).status().IsCorruption());
}

// Property: the encoding preserves document order byte-lexicographically.
// This is what lets the Indexed Lookup B+tree use plain byte keys.
TEST(DeweyCodecTest, OrderPreservationRandomized) {
  Rng rng(77);
  LevelTable table;
  std::vector<DeweyId> ids;
  for (int i = 0; i < 300; ++i) {
    std::vector<uint32_t> comps = {0};
    const size_t depth = 1 + rng.Uniform(5);
    for (size_t d = 0; d < depth; ++d) {
      comps.push_back(static_cast<uint32_t>(rng.Uniform(30)));
    }
    ids.emplace_back(std::move(comps));
    table.Observe(ids.back());
  }
  DeweyCodec codec(table);
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      const int id_order = ids[i].Compare(ids[j]);
      const int enc_order =
          CompareEncodings(codec.Encode(ids[i]), codec.Encode(ids[j]));
      EXPECT_EQ(id_order < 0, enc_order < 0)
          << ids[i].ToString() << " vs " << ids[j].ToString();
      EXPECT_EQ(id_order == 0, enc_order == 0);
    }
  }
}

// Probe ids with components beyond the observed maxima (Section 5 uncle
// probes, arbitrary rm targets) must still compare correctly against
// every stored id after encoding, thanks to saturation + the spare bit.
TEST(DeweyCodecTest, OversizedProbeComponentsKeepOrder) {
  LevelTable table;
  const auto stored = Ids({"0.0.1", "0.1.2", "0.3.0.1", "0.7"});
  for (const DeweyId& id : stored) table.Observe(id);
  DeweyCodec codec(table);
  const auto probes = Ids({"0.9", "0.8.100", "0.3.0.2", "0.3.1", "0.100.4",
                           "0.7.999", "0.0.500"});
  for (const DeweyId& probe : probes) {
    const std::vector<uint8_t> ep = codec.Encode(probe);
    for (const DeweyId& id : stored) {
      const int want = probe.Compare(id);
      const int got = CompareEncodings(ep, codec.Encode(id));
      EXPECT_EQ(want < 0, got < 0)
          << probe.ToString() << " vs " << id.ToString();
      EXPECT_EQ(want > 0, got > 0)
          << probe.ToString() << " vs " << id.ToString();
    }
  }
}

TEST(DeltaBlockTest, RoundTripSortedRun) {
  const auto ids =
      Ids({"0.0.1", "0.0.2", "0.0.2.5", "0.1", "0.1.0.0", "0.7.3"});
  DeltaBlockEncoder enc;
  for (const DeweyId& id : ids) enc.Append(id);
  EXPECT_EQ(enc.count(), ids.size());
  const std::vector<uint8_t> block = enc.Finish();

  DeltaBlockDecoder dec(block);
  std::vector<DeweyId> decoded;
  DeweyId id;
  while (dec.Next(&id)) decoded.push_back(id);
  ASSERT_TRUE(dec.status().ok()) << dec.status().ToString();
  EXPECT_EQ(decoded, ids);
}

TEST(DeltaBlockTest, DuplicatesAllowed) {
  DeltaBlockEncoder enc;
  enc.Append(Id("0.1"));
  enc.Append(Id("0.1"));
  const std::vector<uint8_t> block = enc.Finish();
  DeltaBlockDecoder dec(block);
  DeweyId id;
  EXPECT_TRUE(dec.Next(&id));
  EXPECT_TRUE(dec.Next(&id));
  EXPECT_EQ(id, Id("0.1"));
  EXPECT_FALSE(dec.Next(&id));
}

TEST(DeltaBlockTest, NonDeltaModeStoresFullIds) {
  const auto ids = Ids({"0.1.2.3.4", "0.1.2.3.5", "0.1.2.3.6"});
  DeltaBlockEncoder with_delta(true);
  DeltaBlockEncoder without_delta(false);
  for (const DeweyId& id : ids) {
    with_delta.Append(id);
    without_delta.Append(id);
  }
  EXPECT_LT(with_delta.SizeBytes(), without_delta.SizeBytes());
  // Both decode identically.
  const std::vector<uint8_t> block = without_delta.Finish();
  DeltaBlockDecoder dec(block);
  std::vector<DeweyId> decoded;
  DeweyId id;
  while (dec.Next(&id)) decoded.push_back(id);
  EXPECT_EQ(decoded, ids);
}

TEST(DeltaBlockTest, DecoderReportsCorruption) {
  DeltaBlockEncoder enc;
  enc.Append(Id("0.1.2"));
  enc.Append(Id("0.1.3"));
  std::vector<uint8_t> block = enc.Finish();
  block.resize(block.size() - 1);
  DeltaBlockDecoder dec(block);
  DeweyId id;
  EXPECT_TRUE(dec.Next(&id));
  EXPECT_FALSE(dec.Next(&id));
  EXPECT_TRUE(dec.status().IsCorruption());
}

TEST(DeltaBlockTest, FinishResetsEncoder) {
  DeltaBlockEncoder enc;
  enc.Append(Id("0.9"));
  enc.Finish();
  // After Finish a smaller id is fine; the encoder starts a new block.
  enc.Append(Id("0.1"));
  const std::vector<uint8_t> block = enc.Finish();
  DeltaBlockDecoder dec(block);
  DeweyId id;
  ASSERT_TRUE(dec.Next(&id));
  EXPECT_EQ(id, Id("0.1"));
}

}  // namespace
}  // namespace xksearch
