// The cross-query batch scheduler: per-batch decoded-list sharing
// (BatchListProvider), window/batch_max collection behaviour, drain on
// stop, and end-to-end parity of batched QueryService execution.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "gtest/gtest.h"
#include "serve/batcher.h"
#include "serve/query_service.h"
#include "serve/thread_pool.h"
#include "storage/wal.h"
#include "test_util.h"

namespace xksearch {
namespace serve {
namespace {

std::unique_ptr<XKSearch> BuildCorpus() {
  DblpOptions gen;
  gen.papers = 600;
  gen.seed = 7;
  gen.plants = {{"alpha", 8}, {"bravo", 60}, {"carol", 400}};
  Result<Document> doc = GenerateDblp(gen);
  EXPECT_TRUE(doc.ok());
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc));
  EXPECT_TRUE(system.ok());
  return std::move(*system);
}

/// A base provider with a scripted answer, to verify layering order.
class StubProvider : public DecodedListProvider {
 public:
  std::shared_ptr<const std::vector<DeweyId>> Get(
      const PackedDeweyList* /*list*/) override {
    ++gets;
    return answer;
  }
  std::shared_ptr<const std::vector<DeweyId>> answer;
  std::atomic<int> gets{0};
};

TEST(BatchListProviderTest, SharedListDecodedOncePerBatch) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const PackedDeweyList* carol = system->index().Find("carol");
  ASSERT_NE(carol, nullptr);

  BatchListProvider provider(/*base=*/nullptr);
  provider.AddDemand(carol);
  provider.AddDemand(carol);

  // Racing members must converge on one decode of one shared copy.
  std::vector<std::shared_ptr<const std::vector<DeweyId>>> copies(4);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < copies.size(); ++t) {
    threads.emplace_back([&, t] { copies[t] = provider.Get(carol); });
  }
  for (auto& th : threads) th.join();
  for (const auto& copy : copies) {
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy.get(), copies[0].get());
  }
  EXPECT_EQ(copies[0]->size(), carol->size());
  const BatchListProvider::Stats stats = provider.GetStats();
  EXPECT_EQ(stats.decodes, 1u);
  EXPECT_EQ(stats.shared_hits, 3u);
  EXPECT_EQ(provider.decoded_entries(), 1u);
}

TEST(BatchListProviderTest, SingleMemberListsDecline) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const PackedDeweyList* alpha = system->index().Find("alpha");
  const PackedDeweyList* bravo = system->index().Find("bravo");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(bravo, nullptr);

  BatchListProvider provider(/*base=*/nullptr);
  provider.AddDemand(alpha);  // one member only
  // bravo: no demand registered at all.
  EXPECT_EQ(provider.Get(alpha), nullptr);
  EXPECT_EQ(provider.Get(bravo), nullptr);
  const BatchListProvider::Stats stats = provider.GetStats();
  EXPECT_EQ(stats.decodes, 0u);
  EXPECT_EQ(stats.declines, 2u);
  EXPECT_EQ(provider.decoded_entries(), 0u);
}

TEST(BatchListProviderTest, BaseProviderAnswersFirst) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const PackedDeweyList* carol = system->index().Find("carol");
  ASSERT_NE(carol, nullptr);

  StubProvider base;
  base.answer =
      std::make_shared<const std::vector<DeweyId>>(carol->Materialize());
  BatchListProvider provider(&base);
  provider.AddDemand(carol);
  provider.AddDemand(carol);

  // Even a shared-demand list is served by the long-lived provider when
  // it has the answer — no per-batch decode, sightings flow to the base.
  std::shared_ptr<const std::vector<DeweyId>> got = provider.Get(carol);
  EXPECT_EQ(got.get(), base.answer.get());
  EXPECT_EQ(base.gets.load(), 1);
  EXPECT_EQ(provider.GetStats().decodes, 0u);
  EXPECT_EQ(provider.decoded_entries(), 0u);
}

TEST(BatchListProviderTest, DropsDecodedListsOnWalEpochChange) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const PackedDeweyList* carol = system->index().Find("carol");
  ASSERT_NE(carol, nullptr);

  BatchListProvider provider(/*base=*/nullptr);
  provider.AddDemand(carol);
  provider.AddDemand(carol);
  provider.AddDemand(carol);

  std::shared_ptr<const std::vector<DeweyId>> before = provider.Get(carol);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(provider.decoded_entries(), 1u);

  // An index commit lands mid-batch: the next Get must not hand out the
  // pre-commit decode — the decoded map is dropped and rebuilt against
  // the current arena generation.
  WalCounters::Instance().commits.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const std::vector<DeweyId>> after = provider.Get(carol);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after.get(), before.get());
  const BatchListProvider::Stats stats = provider.GetStats();
  EXPECT_EQ(stats.epoch_drops, 1u);
  EXPECT_EQ(stats.decodes, 2u);
  // The copy handed out before the drop stays pinned and valid.
  EXPECT_EQ(before->size(), carol->size());
}

TEST(BatcherTest, GroupsQueriesWithinWindowUnderOneProvider) {
  ThreadPool::Options pool_options;
  pool_options.workers = 4;
  ThreadPool pool(pool_options);

  std::mutex mu;
  std::vector<size_t> batch_sizes;
  std::set<const DecodedListProvider*> providers;
  std::atomic<int> ran{0};

  Batcher::Options options;
  options.window_us = 200000;  // generous: all four land in one batch
  options.batch_max = 16;
  Batcher batcher(options, &pool, /*base=*/nullptr,
                  [&](const std::vector<Batcher::Item>& batch) {
                    std::lock_guard<std::mutex> lock(mu);
                    batch_sizes.push_back(batch.size());
                  });

  for (int i = 0; i < 4; ++i) {
    Batcher::Item item;
    item.run = [&](DecodedListProvider* provider) {
      {
        std::lock_guard<std::mutex> lock(mu);
        providers.insert(provider);
      }
      ran.fetch_add(1);
    };
    ASSERT_TRUE(batcher.Enqueue(std::move(item)).ok());
  }
  batcher.Stop();
  pool.Stop(/*drain=*/true);

  EXPECT_EQ(ran.load(), 4);
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 4u);
  // One batch => one shared provider for every member.
  EXPECT_EQ(providers.size(), 1u);
}

TEST(BatcherTest, FullBatchDispatchesBeforeWindowCloses) {
  ThreadPool::Options pool_options;
  pool_options.workers = 2;
  ThreadPool pool(pool_options);

  std::promise<void> both_ran;
  std::atomic<int> ran{0};
  Batcher::Options options;
  options.window_us = 2000000;  // 2s — far longer than the test budget
  options.batch_max = 2;
  Batcher batcher(options, &pool, nullptr, nullptr);

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 2; ++i) {
    Batcher::Item item;
    item.run = [&](DecodedListProvider*) {
      if (ran.fetch_add(1) + 1 == 2) both_ran.set_value();
    };
    ASSERT_TRUE(batcher.Enqueue(std::move(item)).ok());
  }
  std::future<void> done = both_ran.get_future();
  ASSERT_EQ(done.wait_for(std::chrono::seconds(10)), std::future_status::ready);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // A full batch must dispatch immediately, not sit out the 2s window.
  EXPECT_LT(elapsed, std::chrono::seconds(1));
  batcher.Stop();
  pool.Stop(/*drain=*/true);
}

TEST(BatcherTest, StopDispatchesEverythingAdmitted) {
  ThreadPool::Options pool_options;
  pool_options.workers = 2;
  ThreadPool pool(pool_options);

  std::atomic<int> ran{0};
  Batcher::Options options;
  options.window_us = 500000;
  options.batch_max = 3;
  Batcher batcher(options, &pool, nullptr, nullptr);
  for (int i = 0; i < 8; ++i) {
    Batcher::Item item;
    item.run = [&](DecodedListProvider*) { ran.fetch_add(1); };
    ASSERT_TRUE(batcher.Enqueue(std::move(item)).ok());
  }
  // Stop without waiting out the window: every admitted item still runs.
  batcher.Stop();
  pool.Stop(/*drain=*/true);
  EXPECT_EQ(ran.load(), 8);
  // And the batcher rejects (never silently drops) after Stop.
  Batcher::Item late;
  late.run = [&](DecodedListProvider*) { ran.fetch_add(1); };
  EXPECT_TRUE(batcher.Enqueue(std::move(late)).IsUnavailable());
  EXPECT_EQ(ran.load(), 8);
}

TEST(BatcherTest, BoundedQueueRejectsBeyondCapacity) {
  ThreadPool::Options pool_options;
  pool_options.workers = 1;
  ThreadPool pool(pool_options);

  Batcher::Options options;
  options.window_us = 300000;  // items sit in the window while we fill up
  options.batch_max = 64;
  options.queue_capacity = 2;
  Batcher batcher(options, &pool, nullptr, nullptr);
  Batcher::Item a, b, c;
  a.run = b.run = c.run = [](DecodedListProvider*) {};
  ASSERT_TRUE(batcher.Enqueue(std::move(a)).ok());
  ASSERT_TRUE(batcher.Enqueue(std::move(b)).ok());
  EXPECT_TRUE(batcher.Enqueue(std::move(c)).IsUnavailable());
  batcher.Stop();
  pool.Stop(/*drain=*/true);
}

// --- End-to-end: a batched QueryService returns bitwise-identical
// results and Table-1 counters, while sharing decodes across members.

TEST(BatchedServiceTest, BatchedExecutionMatchesUnbatchedAndSharesDecodes) {
  std::unique_ptr<XKSearch> system = BuildCorpus();

  const std::vector<std::vector<std::string>> queries = {
      {"alpha", "carol"}, {"bravo", "carol"}, {"alpha", "bravo"},
      {"carol", "alpha"},  // same canonical query as the first
      {"bravo", "carol", "alpha"},
  };
  // Reference: the raw engine, no serving layer at all.
  std::vector<SearchResult> reference;
  for (const auto& query : queries) {
    Result<SearchResult> r = system->Search(query, SearchOptions());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(std::move(*r));
  }

  QueryServiceOptions options;
  options.pool.workers = 4;
  options.enable_cache = false;
  options.single_flight = false;  // every submission must really execute
  options.batch_window_us = 50000;
  options.batch_max = 16;
  QueryService service(system.get(), options);

  std::vector<std::future<Result<QueryResponse>>> futures;
  for (const auto& query : queries) {
    futures.push_back(service.Submit(query, SearchOptions()));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<QueryResponse> response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->result.nodes, reference[i].nodes) << "query " << i;
    EXPECT_EQ(static_cast<uint64_t>(response->result.stats.match_ops),
              static_cast<uint64_t>(reference[i].stats.match_ops))
        << "query " << i;
    EXPECT_EQ(static_cast<uint64_t>(response->result.stats.results),
              static_cast<uint64_t>(reference[i].stats.results))
        << "query " << i;
  }

  const MetricsRegistry& metrics = service.metrics();
  EXPECT_GE(static_cast<uint64_t>(metrics.batches), 1u);
  EXPECT_EQ(static_cast<uint64_t>(metrics.batched_queries), queries.size());
  EXPECT_EQ(metrics.batch_size.count(), 1u);
  // Every query wants "carol" or "bravo" alongside others; with all five
  // in one 50ms window at least one list is demanded twice and shared.
  EXPECT_GE(static_cast<uint64_t>(metrics.shared_decodes), 1u);
  const std::string report = service.MetricsReport();
  EXPECT_NE(report.find("batches:"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace xksearch
