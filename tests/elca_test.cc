#include "slca/elca.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/xksearch.h"
#include "gen/random_tree.h"
#include "gen/school.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/brute_force.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Ids;
using testing_util::Strings;

std::vector<DeweyId> RunElca(const std::vector<std::vector<DeweyId>>& lists,
                             QueryStats* stats = nullptr) {
  QueryStats local;
  if (stats == nullptr) stats = &local;
  std::vector<std::unique_ptr<KeywordList>> owned;
  std::vector<KeywordList*> ptrs;
  for (const auto& list : lists) {
    owned.push_back(std::make_unique<VectorKeywordList>(&list, stats));
    ptrs.push_back(owned.back().get());
  }
  Result<std::vector<DeweyId>> got = ComputeElcaList(ptrs, {}, stats);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  return got.ok() ? got.ValueOrDie() : std::vector<DeweyId>{};
}

TEST(ElcaTest, SlcasAreAlwaysElcas) {
  // Two disjoint answers: the root has no fresh witnesses of its own.
  const auto s1 = Ids({"0.1.0", "0.2.0"});
  const auto s2 = Ids({"0.1.1", "0.2.1"});
  EXPECT_EQ(Strings(RunElca({s1, s2})),
            (std::vector<std::string>{"0.1", "0.2"}));
}

TEST(ElcaTest, AncestorWithFreshWitnessesQualifies) {
  // 0.1 is an SLCA; the root holds additional occurrences of BOTH
  // keywords outside subtree(0.1), so the root is an ELCA too.
  const auto s1 = Ids({"0.1.0", "0.2"});
  const auto s2 = Ids({"0.1.1", "0.3"});
  EXPECT_EQ(Strings(RunElca({s1, s2})),
            (std::vector<std::string>{"0", "0.1"}));
}

TEST(ElcaTest, AncestorWithOnlyOneFreshKeywordDoesNot) {
  // The root sees a fresh s1 occurrence (0.2) but every s2 occurrence is
  // absorbed by the covering node 0.1 -> root is an LCA but not an ELCA.
  const auto s1 = Ids({"0.1.0", "0.2"});
  const auto s2 = Ids({"0.1.1"});
  EXPECT_EQ(Strings(RunElca({s1, s2})), (std::vector<std::string>{"0.1"}));
  // ...while All-LCA keeps the root.
  EXPECT_EQ(Strings(BruteForceAllLca({s1, s2})),
            (std::vector<std::string>{"0", "0.1"}));
}

TEST(ElcaTest, NestedCoveringNodes) {
  // 0.1.1 covers both; 0.1 holds fresh occurrences of both keywords
  // (0.1.0 for s1 via... construct: s1 at 0.1.0 and 0.1.1.0; s2 at
  // 0.1.2 and 0.1.1.1). 0.1.1 is an SLCA/ELCA; 0.1 keeps 0.1.0 and
  // 0.1.2 as fresh witnesses -> ELCA as well; the root gets nothing.
  const auto s1 = Ids({"0.1.0", "0.1.1.0"});
  const auto s2 = Ids({"0.1.1.1", "0.1.2"});
  EXPECT_EQ(Strings(RunElca({s1, s2})),
            (std::vector<std::string>{"0.1", "0.1.1"}));
}

TEST(ElcaTest, SingleKeyword) {
  // Every occurrence node is covering; an ancestor occurrence keeps its
  // own (at-self) witness, so for k=1 ELCA = the whole list.
  const auto s1 = Ids({"0.1", "0.1.2", "0.3"});
  EXPECT_EQ(Strings(RunElca({s1})),
            (std::vector<std::string>{"0.1", "0.1.2", "0.3"}));
}

TEST(ElcaTest, EmptyListYieldsNothing) {
  EXPECT_TRUE(RunElca({Ids({"0.1"}), {}}).empty());
}

TEST(ElcaTest, DuplicateOccurrencesOnOneNodeCountOnce) {
  // Keyword lists are sets of nodes; a node appears once per list.
  const auto s1 = Ids({"0.1.0"});
  const auto s2 = Ids({"0.1.0"});
  EXPECT_EQ(Strings(RunElca({s1, s2})), (std::vector<std::string>{"0.1.0"}));
}

TEST(ElcaTest, SchoolClassesIsNotAnElca) {
  // <classes> contains john+ben only through the two class answers, so
  // it is an All-LCA but not an ELCA; the school root holds the fresh
  // baseball pair... which is itself covering, so the root is not an
  // ELCA either.
  Document doc = BuildSchoolDocument();
  InvertedIndex index = InvertedIndex::Build(doc);
  const std::vector<std::vector<DeweyId>> lists = {index.Materialize("john"),
                                                   index.Materialize("ben")};
  const std::vector<DeweyId> elcas = RunElca(lists);
  Result<std::vector<DeweyId>> expected =
      OracleElca(doc, index, {"john", "ben"});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Strings(elcas), Strings(*expected));
  // Here ELCA coincides with SLCA: every non-smallest LCA has all its
  // witnesses absorbed.
  Result<std::vector<DeweyId>> slcas = OracleSlca(doc, index, {"john", "ben"});
  ASSERT_TRUE(slcas.ok());
  EXPECT_EQ(Strings(elcas), Strings(*slcas));
}

TEST(ElcaTest, SemanticsNestOnRandomDocuments) {
  Rng rng(555);
  RandomTreeOptions options;
  options.node_count = 400;
  options.vocab_size = 4;
  for (int round = 0; round < 20; ++round) {
    const Document doc = GenerateRandomDocument(&rng, options);
    InvertedIndex index = InvertedIndex::Build(doc);
    const std::vector<std::string> vocab = RandomTreeVocabulary(options);
    std::vector<std::vector<DeweyId>> lists;
    for (int i = 0; i < 2 + static_cast<int>(rng.Uniform(2)); ++i) {
      lists.push_back(index.Materialize(vocab[rng.Uniform(vocab.size())]));
    }
    const TreeOracle oracle(doc, lists);
    const std::vector<DeweyId> slca = oracle.Slca();
    const std::vector<DeweyId> elca = oracle.Elca();
    const std::vector<DeweyId> lca = oracle.AllLca();

    // The algorithm agrees with the oracle.
    EXPECT_EQ(Strings(RunElca(lists)), Strings(elca)) << "round " << round;

    // slca ⊆ elca ⊆ lca (all three sorted).
    EXPECT_TRUE(std::includes(elca.begin(), elca.end(), slca.begin(),
                              slca.end()));
    EXPECT_TRUE(
        std::includes(lca.begin(), lca.end(), elca.begin(), elca.end()));
  }
}

TEST(ElcaTest, EngineSemanticsMode) {
  Result<std::unique_ptr<XKSearch>> system = XKSearch::BuildFromXml(
      "<r><a><x>p q</x><y>p</y><z>q</z></a><b>p</b><c>q</c></r>");
  ASSERT_TRUE(system.ok());
  SearchOptions elca;
  elca.semantics = Semantics::kElca;
  Result<SearchResult> result = (*system)->Search({"p", "q"}, elca);
  ASSERT_TRUE(result.ok());
  Result<std::vector<DeweyId>> expected =
      OracleElca((*system)->document(), (*system)->index(), {"p", "q"});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Strings(result->nodes), Strings(*expected));
  // The <x> text covers both; <a> holds fresh p (in y) and q (in z);
  // the root holds fresh p (b) and q (c): three nested ELCAs.
  EXPECT_EQ(result->nodes.size(), 3u);
}

TEST(ElcaTest, DiskAndMemoryAgree) {
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument(), build);
  ASSERT_TRUE(system.ok());
  SearchOptions mem;
  mem.semantics = Semantics::kElca;
  SearchOptions disk = mem;
  disk.use_disk_index = true;
  Result<SearchResult> m = (*system)->Search({"john", "ben"}, mem);
  Result<SearchResult> d = (*system)->Search({"john", "ben"}, disk);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(Strings(m->nodes), Strings(d->nodes));
}

}  // namespace
}  // namespace xksearch
