// The crash-point sweep: the PR's recovery invariant is that a process
// killed at ANY durable operation of an update batch leaves an index
// that, after reopen (which replays the WAL), answers every query
// exactly like the pre-batch index or exactly like the post-batch index
// — never a hybrid of the two. This harness proves it exhaustively: a
// fault-free counting run measures the batch's durable-operation count
// W, then the batch is re-run W times against fresh copies of the index,
// killed at operation k for every k in [1, W] (and at every fsync
// barrier), reopened, classified against the pre/post posting-set
// oracles, and queried.
//
// XK_CRASH_SWEEP_SCALE enlarges the document and the batch (the slow
// tier runs scale 3); the sweep is exhaustive at every scale.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/disk_searcher.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/brute_force.h"
#include "storage/disk_index.h"
#include "storage/fault_injection.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Strings;

using PostingMap = std::map<std::string, std::vector<DeweyId>>;

int SweepScale() {
  const char* env = std::getenv("XK_CRASH_SWEEP_SCALE");
  if (env == nullptr) return 1;
  const int scale = std::atoi(env);
  return scale > 0 ? scale : 1;
}

void CopyFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  ASSERT_TRUE(in.good()) << from;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  ASSERT_TRUE(out.good()) << to;
}

class CrashRecoverySweep : public ::testing::Test {
 protected:
  struct Op {
    bool is_add;
    std::string keyword;
    DeweyId id;
  };

  void SetUp() override {
    base_prefix_ = testing_util::UniqueTempPrefix("crash_base");
    work_prefix_ = testing_util::UniqueTempPrefix("crash_work");
    const int scale = SweepScale();

    // Pre-batch index: a regular grid of postings, plus a deep filler
    // posting to widen the level table (CanEncode headroom for adds).
    // The posting lists are packed per term, so the on-disk tree size —
    // and with it the sweep domain W — scales with DISTINCT terms, not
    // with list length; the `bulk` family provides that term diversity.
    for (int i = 0; i < 30 * scale; ++i) {
      const std::string si = std::to_string(i);
      source_.AddPosting("alpha", Id("0." + si + ".0"));
      source_.AddPosting("beta", Id("0." + si + ".1"));
      source_.AddPosting(i % 2 == 0 ? "gamma" : "delta", Id("0." + si + ".2"));
      source_.AddPosting("bulk" + si, Id("0." + si + ".4"));
    }
    source_.AddPosting("zzfiller", Id("0.7.7.7"));
    Result<std::unique_ptr<DiskIndex>> built =
        DiskIndex::Build(source_, base_prefix_);
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    // The batch: remove every other alpha posting and all delta
    // postings, extend beta, introduce a brand-new keyword.
    for (const std::string& term : source_.Terms()) {
      for (const DeweyId& id : source_.Materialize(term)) {
        pre_[term].push_back(id);
      }
    }
    int n = 0;
    for (const DeweyId& id : pre_["alpha"]) {
      if (n++ % 2 == 0) ops_.push_back({false, "alpha", id});
    }
    for (const DeweyId& id : pre_["delta"]) {
      ops_.push_back({false, "delta", id});
    }
    for (int i = 0; i < 30 * scale; ++i) {
      const std::string si = std::to_string(i);
      ops_.push_back({true, "beta", Id("0." + si + ".3")});
      if (i % 2 == 0) ops_.push_back({true, "omega", Id("0." + si + ".2")});
      ops_.push_back({true, "fresh" + si, Id("0." + si + ".5")});
    }

    std::map<std::string, std::set<DeweyId>> post;
    for (const auto& [term, ids] : pre_) {
      post[term].insert(ids.begin(), ids.end());
    }
    for (const Op& op : ops_) {
      if (op.is_add) {
        post[op.keyword].insert(op.id);
      } else {
        post[op.keyword].erase(op.id);
      }
    }
    for (const auto& [term, ids] : post) {
      if (ids.empty()) continue;
      post_[term].assign(ids.begin(), ids.end());
    }
    for (const auto& [term, ids] : pre_) keywords_.insert(term);
    for (const auto& [term, ids] : post_) keywords_.insert(term);
  }

  void TearDown() override {
    for (const char* suffix : {".il", ".scan", ".dict", ".wal"}) {
      std::remove((base_prefix_ + suffix).c_str());
      std::remove((work_prefix_ + suffix).c_str());
    }
  }

  // Fresh pre-batch copy of the index under the work prefix.
  void ResetWorkFiles() {
    for (const char* suffix : {".il", ".scan", ".dict"}) {
      CopyFile(base_prefix_ + suffix, work_prefix_ + suffix);
    }
    std::remove((work_prefix_ + ".wal").c_str());
  }

  // Runs the whole batch (Open, every op, Finish) with each store
  // wrapped in a FaultInjectingPageStore attached to `schedule`.
  // Returns the first failure (the simulated crash) or OK.
  Status RunBatch(const std::shared_ptr<CrashSchedule>& schedule) {
    DiskIndexOptions options;
    options.store_decorator = [&schedule](std::unique_ptr<PageStore> store,
                                          std::string_view) {
      auto wrapped =
          std::make_unique<FaultInjectingPageStore>(std::move(store), 1);
      wrapped->SetCrashSchedule(schedule);
      return wrapped;
    };
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(work_prefix_, options);
    if (!updater.ok()) return updater.status();
    for (const Op& op : ops_) {
      const Status st = op.is_add
                            ? (*updater)->AddPosting(op.keyword, op.id)
                            : (*updater)->RemovePosting(op.keyword, op.id);
      if (!st.ok()) return st;
    }
    return (*updater)->Finish();
  }

  // Reopens the work index (running WAL recovery), reads every keyword
  // list, checks dictionary/list agreement and zero leaked pins, and
  // cross-checks a few queries against the model's brute-force SLCA.
  PostingMap ReadRecoveredState() {
    PostingMap state;
    Result<std::unique_ptr<DiskIndex>> index = DiskIndex::Open(work_prefix_);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    if (!index.ok()) return state;
    for (const std::string& keyword : keywords_) {
      const DiskIndex::TermInfo* info = (*index)->FindTerm(keyword);
      if (info == nullptr) continue;
      std::vector<DeweyId> ids;
      {
        Result<DiskIndex::PostingCursor> cursor =
            (*index)->OpenPostings(info->id);
        EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
        if (!cursor.ok()) continue;
        DeweyId id;
        while (cursor->Next(&id)) ids.push_back(id);
        XKS_EXPECT_OK(cursor->status());
      }
      EXPECT_EQ(info->frequency, ids.size())
          << "dictionary frequency disagrees with scan layout for "
          << keyword;
      state[keyword] = std::move(ids);
    }
    EXPECT_EQ((*index)->il_pool()->DebugTotalPins(), 0u);
    EXPECT_EQ((*index)->scan_pool()->DebugTotalPins(), 0u);
    return state;
  }

  // Whether the recovered posting sets are exactly the pre- or exactly
  // the post-batch oracle; anything else fails the test.
  enum class Side { kPre, kPost, kHybrid };
  Side Classify(const PostingMap& state) {
    if (state == pre_) return Side::kPre;
    if (state == post_) return Side::kPost;
    return Side::kHybrid;
  }

  // Query parity: the recovered index must answer like the side it was
  // classified to, via the real DiskSearcher path (IL tree match ops).
  void CheckQueries(const PostingMap& oracle) {
    Result<std::unique_ptr<DiskSearcher>> searcher =
        DiskSearcher::Open(work_prefix_);
    ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
    const std::vector<std::vector<std::string>> queries = {
        {"alpha", "beta"}, {"beta", "gamma"}, {"beta", "omega"}};
    for (const std::vector<std::string>& query : queries) {
      std::vector<std::vector<DeweyId>> lists;
      for (const std::string& keyword : query) {
        auto it = oracle.find(keyword);
        lists.push_back(it == oracle.end() ? std::vector<DeweyId>{}
                                           : it->second);
      }
      const std::vector<DeweyId> expected = BruteForceSlca(lists);
      Result<SearchResult> result = (*searcher)->Search(query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Strings(result->nodes), Strings(expected))
          << "query diverged from its batch-boundary oracle";
    }
  }

  std::string base_prefix_;
  std::string work_prefix_;
  InvertedIndex source_;
  std::vector<Op> ops_;
  PostingMap pre_;
  PostingMap post_;
  std::set<std::string> keywords_;
};

TEST_F(CrashRecoverySweep, FaultFreeBatchLandsOnPostState) {
  ResetWorkFiles();
  auto schedule = std::make_shared<CrashSchedule>();  // counting only
  XKS_ASSERT_OK(RunBatch(schedule));
  EXPECT_GT(schedule->operations(), 0u);
  EXPECT_GT(schedule->syncs(), 0u);
  EXPECT_FALSE(schedule->crashed());
  const PostingMap state = ReadRecoveredState();
  EXPECT_EQ(Classify(state), Side::kPost);
  CheckQueries(post_);
}

TEST_F(CrashRecoverySweep, EveryWritePointRecoversToABatchBoundary) {
  // Counting run: W durable operations = the sweep domain.
  ResetWorkFiles();
  auto counting = std::make_shared<CrashSchedule>();
  XKS_ASSERT_OK(RunBatch(counting));
  const uint64_t total_ops = counting->operations();
  ASSERT_GT(total_ops, 0u);
  RecordProperty("sweep_domain_ops", static_cast<int>(total_ops));
  std::printf("crash sweep: %llu durable operations (scale %d)\n",
              static_cast<unsigned long long>(total_ops), SweepScale());

  uint64_t landed_pre = 0;
  uint64_t landed_post = 0;
  for (uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("crash at durable operation " + std::to_string(k) + " of " +
                 std::to_string(total_ops));
    ResetWorkFiles();
    auto schedule = std::make_shared<CrashSchedule>();
    schedule->CrashAtOperation(k);
    const Status crashed = RunBatch(schedule);
    ASSERT_FALSE(crashed.ok()) << "crash point " << k << " never fired";
    ASSERT_TRUE(crashed.IsIoError()) << crashed.ToString();
    ASSERT_TRUE(schedule->crashed());

    const PostingMap state = ReadRecoveredState();
    const Side side = Classify(state);
    ASSERT_NE(side, Side::kHybrid)
        << "recovered index is neither pre- nor post-batch";
    if (side == Side::kPre) {
      ++landed_pre;
      CheckQueries(pre_);
    } else {
      ++landed_post;
      CheckQueries(post_);
    }
  }
  // Both outcomes must be reachable: early kills land pre-batch, kills
  // after the commit fsync land post-batch. (All-pre would mean the
  // batch never becomes durable; all-post would mean it was never
  // staged.)
  EXPECT_GT(landed_pre, 0u);
  EXPECT_GT(landed_post, 0u);
}

TEST_F(CrashRecoverySweep, EverySyncPointRecoversToABatchBoundary) {
  // The same sweep over fsync barriers only: dying ON the barrier is the
  // adversarial case for barrier-ordering bugs (a commit counted durable
  // before its fsync returned would surface here as a hybrid).
  ResetWorkFiles();
  auto counting = std::make_shared<CrashSchedule>();
  XKS_ASSERT_OK(RunBatch(counting));
  const uint64_t total_syncs = counting->syncs();
  ASSERT_GT(total_syncs, 0u);

  uint64_t landed_pre = 0;
  uint64_t landed_post = 0;
  for (uint64_t s = 1; s <= total_syncs; ++s) {
    SCOPED_TRACE("crash at fsync " + std::to_string(s) + " of " +
                 std::to_string(total_syncs));
    ResetWorkFiles();
    auto schedule = std::make_shared<CrashSchedule>();
    schedule->CrashAtSync(s);
    const Status crashed = RunBatch(schedule);
    ASSERT_FALSE(crashed.ok()) << "sync crash point " << s << " never fired";
    ASSERT_TRUE(schedule->crashed());

    const PostingMap state = ReadRecoveredState();
    const Side side = Classify(state);
    ASSERT_NE(side, Side::kHybrid)
        << "recovered index is neither pre- nor post-batch";
    if (side == Side::kPre) {
      ++landed_pre;
      CheckQueries(pre_);
    } else {
      ++landed_post;
      CheckQueries(post_);
    }
  }
  // The first fsync is the commit barrier (killed before completion →
  // pre); later fsyncs order the already-committed apply (→ post).
  EXPECT_GT(landed_pre, 0u);
  EXPECT_GT(landed_post, 0u);
}

}  // namespace
}  // namespace xksearch
