#include "slca/slca.h"

#include <string>
#include <vector>

#include "gen/school.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/brute_force.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Ids;
using testing_util::Strings;

constexpr SlcaAlgorithm kAllAlgorithms[] = {
    SlcaAlgorithm::kIndexedLookupEager,
    SlcaAlgorithm::kScanEager,
    SlcaAlgorithm::kStack,
};

/// Runs `algorithm` over in-memory lists and returns the SLCAs.
std::vector<DeweyId> RunSlca(SlcaAlgorithm algorithm,
                         const std::vector<std::vector<DeweyId>>& lists,
                         QueryStats* stats = nullptr,
                         size_t block_size = 1) {
  QueryStats local;
  if (stats == nullptr) stats = &local;
  std::vector<std::unique_ptr<KeywordList>> owned;
  std::vector<KeywordList*> ptrs;
  for (const auto& list : lists) {
    owned.push_back(std::make_unique<VectorKeywordList>(&list, stats));
    ptrs.push_back(owned.back().get());
  }
  SlcaOptions options;
  options.block_size = block_size;
  Result<std::vector<DeweyId>> result =
      ComputeSlcaList(algorithm, ptrs, options, stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.ValueOrDie() : std::vector<DeweyId>{};
}

class AllAlgorithmsTest : public ::testing::TestWithParam<SlcaAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, AllAlgorithmsTest,
                         ::testing::ValuesIn(kAllAlgorithms),
                         [](const ::testing::TestParamInfo<SlcaAlgorithm>& i) {
                           return ToString(i.param);
                         });

TEST_P(AllAlgorithmsTest, PaperExampleJohnBen) {
  // The paper's School.xml: {john, ben} has exactly three answers — the
  // CS2A class, the CS3A class, and the baseball players element.
  Document doc = BuildSchoolDocument();
  InvertedIndex index = InvertedIndex::Build(doc);
  const std::vector<std::vector<DeweyId>> lists = {index.Materialize("john"),
                                                   index.Materialize("ben")};
  const std::vector<DeweyId> got = RunSlca(GetParam(), lists);
  Result<std::vector<DeweyId>> expected =
      OracleSlca(doc, index, {"john", "ben"});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(got, *expected);
  EXPECT_EQ(got.size(), 3u) << ::testing::PrintToString(Strings(got));
}

TEST_P(AllAlgorithmsTest, SingleKeywordReturnsWholeList) {
  // With one keyword, the smallest answer subtrees are exactly the
  // instance nodes that have no instance below them.
  const auto list = Ids({"0.1", "0.1.2", "0.3"});
  const std::vector<DeweyId> got = RunSlca(GetParam(), {list});
  EXPECT_EQ(Strings(got), (std::vector<std::string>{"0.1.2", "0.3"}));
}

TEST_P(AllAlgorithmsTest, EmptyListYieldsNoResults) {
  EXPECT_TRUE(RunSlca(GetParam(), {Ids({"0.1"}), {}}).empty());
  EXPECT_TRUE(RunSlca(GetParam(), {{}, Ids({"0.1"})}).empty());
}

TEST_P(AllAlgorithmsTest, DisjointSubtreesGiveRoot) {
  const std::vector<DeweyId> got =
      RunSlca(GetParam(), {Ids({"0.1.0"}), Ids({"0.2.0"})});
  EXPECT_EQ(Strings(got), (std::vector<std::string>{"0"}));
}

TEST_P(AllAlgorithmsTest, SameNodeInBothLists) {
  // A single node containing both keywords is its own SLCA.
  const std::vector<DeweyId> got =
      RunSlca(GetParam(), {Ids({"0.1.1"}), Ids({"0.1.1"})});
  EXPECT_EQ(Strings(got), (std::vector<std::string>{"0.1.1"}));
}

TEST_P(AllAlgorithmsTest, AncestorResultsSuppressed) {
  // Pairs exist under 0.1 and under 0.2; the root also contains both
  // keywords but must not be reported (not smallest).
  const auto s1 = Ids({"0.1.0", "0.2.0"});
  const auto s2 = Ids({"0.1.1", "0.2.1"});
  const std::vector<DeweyId> got = RunSlca(GetParam(), {s1, s2});
  EXPECT_EQ(Strings(got), (std::vector<std::string>{"0.1", "0.2"}));
}

TEST_P(AllAlgorithmsTest, NestedMatchesKeepDeepest) {
  // Both keywords occur under 0.0.0 and (separately) directly under 0.0;
  // only the deep pair survives ancestor removal.
  const auto s1 = Ids({"0.0.0.1", "0.0.5"});
  const auto s2 = Ids({"0.0.0.2", "0.0.6"});
  const std::vector<DeweyId> got = RunSlca(GetParam(), {s1, s2});
  // lca(0.0.5, 0.0.6) = 0.0, which is an ancestor of 0.0.0 -> removed.
  EXPECT_EQ(Strings(got), (std::vector<std::string>{"0.0.0"}));
}

TEST_P(AllAlgorithmsTest, KeywordOnAncestorNode) {
  // One keyword sits on an ancestor of the other's instances: the SLCA is
  // the ancestor node itself.
  const auto s1 = Ids({"0.1"});
  const auto s2 = Ids({"0.1.3.2"});
  const std::vector<DeweyId> got = RunSlca(GetParam(), {s1, s2});
  EXPECT_EQ(Strings(got), (std::vector<std::string>{"0.1"}));
}

TEST_P(AllAlgorithmsTest, ThreeKeywords) {
  const auto s1 = Ids({"0.0.1", "0.2.0"});
  const auto s2 = Ids({"0.0.2", "0.2.1"});
  const auto s3 = Ids({"0.0.3", "0.5"});
  const std::vector<DeweyId> got = RunSlca(GetParam(), {s1, s2, s3});
  EXPECT_EQ(got, BruteForceSlca({s1, s2, s3}));
  // The root also covers all three keywords but is an ancestor of 0.0.
  EXPECT_EQ(Strings(got), (std::vector<std::string>{"0.0"}));
}

TEST_P(AllAlgorithmsTest, ResultsInDocumentOrderAndUnique) {
  const auto s1 = Ids({"0.0.0", "0.1.0", "0.2.0", "0.3.0"});
  const auto s2 = Ids({"0.0.1", "0.1.1", "0.2.1", "0.3.1"});
  const std::vector<DeweyId> got = RunSlca(GetParam(), {s1, s2});
  EXPECT_EQ(Strings(got),
            (std::vector<std::string>{"0.0", "0.1", "0.2", "0.3"}));
}

TEST_P(AllAlgorithmsTest, TooManyListsRejected) {
  std::vector<std::vector<DeweyId>> lists(65, Ids({"0.1"}));
  QueryStats stats;
  std::vector<std::unique_ptr<KeywordList>> owned;
  std::vector<KeywordList*> ptrs;
  for (const auto& list : lists) {
    owned.push_back(std::make_unique<VectorKeywordList>(&list, &stats));
    ptrs.push_back(owned.back().get());
  }
  Result<std::vector<DeweyId>> result =
      ComputeSlcaList(GetParam(), ptrs, {}, &stats);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_P(AllAlgorithmsTest, NoListsRejected) {
  QueryStats stats;
  Result<std::vector<DeweyId>> result =
      ComputeSlcaList(GetParam(), {}, {}, &stats);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_P(AllAlgorithmsTest, BlockSizeDoesNotChangeResults) {
  const auto s1 = Ids({"0.0.0", "0.1.0", "0.2.0", "0.3.0", "0.4.4.4"});
  const auto s2 = Ids({"0.0.1", "0.1.1", "0.2.1", "0.3.1", "0.4.4.5"});
  const std::vector<DeweyId> baseline = RunSlca(GetParam(), {s1, s2});
  for (size_t block : {2u, 3u, 100u}) {
    EXPECT_EQ(RunSlca(GetParam(), {s1, s2}, nullptr, block), baseline)
        << "block=" << block;
  }
}

TEST(IndexedLookupTest, MatchStepPropertyOne) {
  // Property 1 example: slca({v}, S) is the deeper of the two lca's.
  QueryStats stats;
  const auto list = Ids({"0.0.1", "0.2.5"});
  VectorKeywordList s(&list, &stats);
  // v between the two entries: lm=0.0.1 (lca 0.0 if under 0.0 ... here
  // v=0.0.9: lca(v,lm)=0.0, lca(v,rm)=0 -> deeper is 0.0.
  Result<DeweyId> x = MatchStep(Id("0.0.9"), &s, &stats);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, Id("0.0"));
  EXPECT_EQ(stats.match_ops, 2u);
  // v below an entry: the entry is its own lm and the slca is v's
  // ancestor at that entry... lm(0.0.1.7)=0.0.1, lca=0.0.1.
  x = MatchStep(Id("0.0.1.7"), &s, &stats);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, Id("0.0.1"));
  // v before everything: only rm exists.
  x = MatchStep(Id("0.0.0"), &s, &stats);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, Id("0.0"));
  // v after everything: only lm exists.
  x = MatchStep(Id("0.9"), &s, &stats);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, Id("0"));
}

TEST(IndexedLookupTest, StatsCountMatchOperations) {
  // k=3 lists with |S1|=2: the IL chain performs one lm and one rm per
  // (v in S1, other list) pair = 2 nodes * 2 lists * 2 ops = 8.
  const auto s1 = Ids({"0.0.0", "0.1.0", "0.2.0", "0.3.0"});
  const auto s2 = Ids({"0.0.1", "0.1.1", "0.2.1", "0.3.1"});
  const auto s3 = Ids({"0.0.2", "0.3.2"});
  QueryStats stats;
  // Note: lists are ordered by size by the caller; s3 smallest.
  RunSlca(SlcaAlgorithm::kIndexedLookupEager, {s3, s1, s2}, &stats);
  EXPECT_EQ(stats.match_ops, 8u);
  EXPECT_EQ(stats.postings_read, 2u);  // only S1 is streamed
}

TEST(StackTest, ReadsEveryList) {
  const auto s1 = Ids({"0.0.0"});
  const auto s2 = Ids({"0.0.1", "0.1.1", "0.2.1", "0.3.1"});
  QueryStats stats;
  RunSlca(SlcaAlgorithm::kStack, {s1, s2}, &stats);
  EXPECT_EQ(stats.postings_read, 5u);  // the whole input, always
}

TEST(ScanEagerTest, ReadsListsAtMostOnce) {
  const auto s1 = Ids({"0.0.0", "0.5.0"});
  const auto s2 = Ids({"0.0.1", "0.1.1", "0.2.1", "0.5.1"});
  QueryStats stats;
  RunSlca(SlcaAlgorithm::kScanEager, {s1, s2}, &stats);
  EXPECT_LE(stats.postings_read, s1.size() + s2.size());
}

TEST(RemoveAncestorsTest, Basics) {
  EXPECT_EQ(Strings(RemoveAncestors(Ids({"0", "0.1", "0.1.2", "0.2"}))),
            (std::vector<std::string>{"0.1.2", "0.2"}));
  EXPECT_EQ(Strings(RemoveAncestors(Ids({"0.3", "0.1"}))),
            (std::vector<std::string>{"0.1", "0.3"}));
  EXPECT_EQ(Strings(RemoveAncestors(Ids({"0.1", "0.1"}))),
            (std::vector<std::string>{"0.1"}));
  EXPECT_TRUE(RemoveAncestors({}).empty());
}

TEST(BruteForceTest, MatchesDefinitionOnTinyInput) {
  const auto s1 = Ids({"0.0.1", "0.2"});
  const auto s2 = Ids({"0.0.2", "0.3"});
  // Combinations: lca(0.0.1,0.0.2)=0.0; lca(0.0.1,0.3)=0;
  // lca(0.2,0.0.2)=0; lca(0.2,0.3)=0. All LCAs = {0, 0.0}; SLCA = {0.0}.
  EXPECT_EQ(Strings(BruteForceAllLca({s1, s2})),
            (std::vector<std::string>{"0", "0.0"}));
  EXPECT_EQ(Strings(BruteForceSlca({s1, s2})),
            (std::vector<std::string>{"0.0"}));
}

}  // namespace
}  // namespace xksearch
