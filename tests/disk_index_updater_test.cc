#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/rng.h"
#include "engine/disk_searcher.h"
#include "gen/school.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/brute_force.h"
#include "storage/disk_index.h"
#include "storage/fault_injection.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Strings;

class DiskIndexUpdaterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = testing_util::UniqueTempPrefix("updater_idx");
    // Base index: two keywords over a small tree.
    source_.AddPosting("apple", Id("0.0.1"));
    source_.AddPosting("apple", Id("0.2.0"));
    source_.AddPosting("banana", Id("0.1"));
    source_.AddPosting("banana", Id("0.2.1"));
    // Widen the level table so updates have room (CanEncode headroom).
    source_.AddPosting("zzfiller", Id("0.7.7.7"));
    Result<std::unique_ptr<DiskIndex>> built =
        DiskIndex::Build(source_, prefix_);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  void TearDown() override {
    for (const char* suffix : {".il", ".scan", ".dict", ".wal"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  // Reads back one keyword list via a freshly opened index.
  std::vector<DeweyId> Postings(const std::string& keyword) {
    Result<std::unique_ptr<DiskIndex>> index = DiskIndex::Open(prefix_);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    std::vector<DeweyId> out;
    const DiskIndex::TermInfo* info = (*index)->FindTerm(keyword);
    if (info == nullptr) return out;
    Result<DiskIndex::PostingCursor> cursor = (*index)->OpenPostings(info->id);
    EXPECT_TRUE(cursor.ok());
    DeweyId id;
    while (cursor->Next(&id)) out.push_back(id);
    XKS_EXPECT_OK(cursor->status());
    // The Indexed Lookup layout must agree with the scan layout.
    DeweyId got;
    DeweyId probe({0});
    Result<bool> rm = (*index)->RightMatch(info->id, probe, &got);
    EXPECT_TRUE(rm.ok());
    if (!out.empty()) {
      EXPECT_TRUE(*rm);
      EXPECT_EQ(got, out.front());
    }
    return out;
  }

  std::string prefix_;
  InvertedIndex source_;
};

TEST_F(DiskIndexUpdaterTest, AddPostingAppears) {
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.1.5")));
    EXPECT_EQ((*updater)->Frequency("apple"), 3u);
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_EQ(Strings(Postings("apple")),
            (std::vector<std::string>{"0.0.1", "0.1.5", "0.2.0"}));
}

TEST_F(DiskIndexUpdaterTest, AddIsIdempotent) {
  Result<std::unique_ptr<DiskIndexUpdater>> updater =
      DiskIndexUpdater::Open(prefix_);
  ASSERT_TRUE(updater.ok());
  XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.0.1")));  // existing
  EXPECT_EQ((*updater)->Frequency("apple"), 2u);
  XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.3")));
  XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.3")));  // repeat
  EXPECT_EQ((*updater)->Frequency("apple"), 3u);
  XKS_ASSERT_OK((*updater)->Finish());
  EXPECT_EQ(Postings("apple").size(), 3u);
}

TEST_F(DiskIndexUpdaterTest, NewKeywordGetsFreshTerm) {
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    XKS_ASSERT_OK((*updater)->AddPosting("cherry", Id("0.4")));
    XKS_ASSERT_OK((*updater)->AddPosting("cherry", Id("0.0.3")));
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_EQ(Strings(Postings("cherry")),
            (std::vector<std::string>{"0.0.3", "0.4"}));
  // Existing keywords are untouched.
  EXPECT_EQ(Postings("apple").size(), 2u);
}

TEST_F(DiskIndexUpdaterTest, RemovePostingDisappears) {
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    XKS_ASSERT_OK((*updater)->RemovePosting("apple", Id("0.0.1")));
    EXPECT_TRUE(
        (*updater)->RemovePosting("apple", Id("0.9.9")).IsNotFound());
    EXPECT_TRUE((*updater)->RemovePosting("nope", Id("0.1")).IsNotFound());
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_EQ(Strings(Postings("apple")), (std::vector<std::string>{"0.2.0"}));
}

TEST_F(DiskIndexUpdaterTest, RemovingEveryPostingDropsTheTerm) {
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    XKS_ASSERT_OK((*updater)->RemovePosting("banana", Id("0.1")));
    XKS_ASSERT_OK((*updater)->RemovePosting("banana", Id("0.2.1")));
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_TRUE(Postings("banana").empty());
  Result<std::unique_ptr<DiskIndex>> index = DiskIndex::Open(prefix_);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->FindTerm("banana"), nullptr);
}

TEST_F(DiskIndexUpdaterTest, OutOfRangeIdRejected) {
  Result<std::unique_ptr<DiskIndexUpdater>> updater =
      DiskIndexUpdater::Open(prefix_);
  ASSERT_TRUE(updater.ok());
  // Component 999999 cannot fit the level table built from the corpus.
  EXPECT_TRUE(
      (*updater)->AddPosting("apple", Id("0.999999")).IsInvalidArgument());
}

TEST_F(DiskIndexUpdaterTest, ManyUpdatesSplitBlocksAndStayConsistent) {
  // Push enough postings through one keyword to force several block
  // splits and re-keyings; mirror everything in an in-memory reference.
  std::vector<DeweyId> reference = source_.Materialize("apple");
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    Rng rng(2024);
    for (int i = 0; i < 3000; ++i) {
      const DeweyId id({0, static_cast<uint32_t>(rng.Uniform(8)),
                        static_cast<uint32_t>(rng.Uniform(8)),
                        static_cast<uint32_t>(rng.Uniform(8))});
      if (rng.Bernoulli(0.25) && !reference.empty()) {
        const size_t pick = rng.Uniform(reference.size());
        XKS_ASSERT_OK((*updater)->RemovePosting("apple", reference[pick]));
        reference.erase(reference.begin() + static_cast<long>(pick));
      } else {
        const Status st = (*updater)->AddPosting("apple", id);
        XKS_ASSERT_OK(st);
        auto pos = std::lower_bound(reference.begin(), reference.end(), id);
        if (pos == reference.end() || *pos != id) reference.insert(pos, id);
      }
    }
    EXPECT_EQ((*updater)->Frequency("apple"), reference.size());
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_EQ(Strings(Postings("apple")), Strings(reference));
}

TEST_F(DiskIndexUpdaterTest, UpdatedIndexAnswersQueriesCorrectly) {
  // End to end: mutate the school index, reopen with DiskSearcher, and
  // check the SLCA result tracks the change.
  const std::string prefix = ::testing::TempDir() + "/updater_school";
  Document doc = BuildSchoolDocument();
  InvertedIndex index = InvertedIndex::Build(doc);
  {
    Result<std::unique_ptr<DiskIndex>> built = DiskIndex::Build(index, prefix);
    ASSERT_TRUE(built.ok());
  }
  {
    // Pretend a new document edit put "ben" on the Robotics project lead
    // (node 0.2.0.1.0 is the text "John" under the lead element; use its
    // sibling position 0.2.0.2 as a fresh text node's id).
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix);
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    XKS_ASSERT_OK((*updater)->AddPosting("ben", Id("0.2.0.2")));
    XKS_ASSERT_OK((*updater)->Finish());
  }
  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix);
  ASSERT_TRUE(searcher.ok());
  Result<SearchResult> result = (*searcher)->Search({"john", "ben"});
  ASSERT_TRUE(result.ok());
  // The Robotics project (0.2.0) now contains both names: a 4th answer.
  EXPECT_EQ(Strings(result->nodes),
            (std::vector<std::string>{"0.0.0", "0.0.1", "0.1.0.1", "0.2.0"}));
  for (const char* suffix : {".il", ".scan", ".dict", ".wal"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(DiskIndexUpdaterTest, ReadersKeepPreBatchSnapshotDuringUpdate) {
  // A DiskSearcher opened before the batch must answer from the
  // pre-batch index for as long as the batch is in flight: the updater
  // stages every write (including buffer-pool eviction write-back) in
  // its StagedPageStore overlays, so the inner files only change at the
  // commit point. Readers hammer queries from two threads while the
  // main thread pushes a long batch through the updater; any divergence
  // from the pre-batch answer is a broken snapshot. Readers that should
  // outlive the commit must reopen — same contract as any index swap —
  // so they are stopped before Finish().
  std::vector<std::vector<DeweyId>> pre_lists = {
      source_.Materialize("apple"), source_.Materialize("banana")};
  const std::vector<std::string> expected_pre =
      Strings(BruteForceSlca(pre_lists));
  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix_);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();

  // Quiesced baseline: no updater exists yet, so this run's algorithm
  // work (the paper's lm/rm match operations) is the reference every
  // mid-batch read must reproduce — the batch may only change WHERE a
  // match is answered from, never how many matches a snapshot query asks.
  Result<SearchResult> quiesced = (*searcher)->Search({"apple", "banana"});
  XKS_ASSERT_OK(quiesced.status());
  ASSERT_EQ(Strings(quiesced->nodes), expected_pre);
  const uint64_t quiesced_match_ops = quiesced->stats.match_ops.load();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<bool> diverged{false};
  auto read_loop = [&] {
    while (!stop.load(std::memory_order_acquire)) {
      Result<SearchResult> result = (*searcher)->Search({"apple", "banana"});
      if (!result.ok() || Strings(result->nodes) != expected_pre ||
          result->stats.match_ops.load() != quiesced_match_ops) {
        diverged.store(true, std::memory_order_release);
      }
      queries.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread reader_a(read_loop);
  std::thread reader_b(read_loop);

  Result<std::unique_ptr<DiskIndexUpdater>> updater =
      DiskIndexUpdater::Open(prefix_);
  ASSERT_TRUE(updater.ok()) << updater.status().ToString();
  XKS_ASSERT_OK((*updater)->RemovePosting("apple", Id("0.0.1")));
  XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.1.0")));
  XKS_ASSERT_OK((*updater)->AddPosting("banana", Id("0.3.1")));
  Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    const DeweyId id({0, static_cast<uint32_t>(rng.Uniform(8)),
                      static_cast<uint32_t>(rng.Uniform(8)),
                      static_cast<uint32_t>(rng.Uniform(8))});
    XKS_ASSERT_OK((*updater)->AddPosting("padding", id));
  }
  stop.store(true, std::memory_order_release);
  reader_a.join();
  reader_b.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_FALSE(diverged.load()) << "a concurrent reader saw mid-batch state";

  XKS_ASSERT_OK((*updater)->Finish());
  EXPECT_EQ(Strings(Postings("apple")),
            (std::vector<std::string>{"0.1.0", "0.2.0"}));
  EXPECT_EQ(Postings("banana").size(), 3u);
  EXPECT_EQ(Postings("padding").size(), (*updater)->Frequency("padding"));
}

TEST_F(DiskIndexUpdaterTest, LegacyPathWithoutWalWritesInPlace) {
  auto exists = [](const std::string& path) {
    return std::ifstream(path).good();
  };
  {
    // Default (WAL) mode stages the batch behind <prefix>.wal; the log
    // file survives Finish (reset to empty, ready for the next batch).
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.1.5")));
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_TRUE(exists(prefix_ + ".wal"));
  std::remove((prefix_ + ".wal").c_str());
  {
    // use_wal=false is the legacy in-place path: no log file, same
    // results, no crash-atomicity guarantee.
    DiskIndexOptions options;
    options.use_wal = false;
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_, options);
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.3")));
    EXPECT_EQ((*updater)->recovered_batches(), 0u);
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_FALSE(exists(prefix_ + ".wal"));
  EXPECT_EQ(Strings(Postings("apple")),
            (std::vector<std::string>{"0.0.1", "0.1.5", "0.2.0", "0.3"}));
}

TEST_F(DiskIndexUpdaterTest, CommittedBatchSurvivesApplyFailure) {
  // Kill the il store on its first write AFTER the commit fsync: the
  // batch is durable in the WAL but the apply pass dies. Finish reports
  // the error; the next updater Open replays the committed batch and
  // reports it through recovered_batches().
  {
    DiskIndexOptions options;
    options.store_decorator = [](std::unique_ptr<PageStore> store,
                                 std::string_view name) -> std::unique_ptr<PageStore> {
      if (name != "il") return store;
      auto wrapped =
          std::make_unique<FaultInjectingPageStore>(std::move(store), 1);
      // In WAL mode the inner il store is only written during the apply
      // pass (all earlier writes land in the overlay), so "first write"
      // = first post-commit apply operation.
      wrapped->FailNthWrite(1);
      wrapped->Arm();
      return wrapped;
    };
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_, options);
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.4.2")));
    XKS_ASSERT_OK((*updater)->RemovePosting("banana", Id("0.1")));
    EXPECT_TRUE((*updater)->Finish().IsIoError());
  }
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    EXPECT_EQ((*updater)->recovered_batches(), 1u);
  }
  EXPECT_EQ(Strings(Postings("apple")),
            (std::vector<std::string>{"0.0.1", "0.2.0", "0.4.2"}));
  EXPECT_EQ(Strings(Postings("banana")), (std::vector<std::string>{"0.2.1"}));
}

TEST_F(DiskIndexUpdaterTest, InMemoryRejected) {
  DiskIndexOptions mem;
  mem.in_memory = true;
  EXPECT_TRUE(DiskIndexUpdater::Open(prefix_, mem).status().IsInvalidArgument());
}

}  // namespace
}  // namespace xksearch
