#include <cstdio>
#include <string>

#include "common/rng.h"
#include "engine/disk_searcher.h"
#include "gen/school.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/brute_force.h"
#include "storage/disk_index.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Strings;

class DiskIndexUpdaterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = testing_util::UniqueTempPrefix("updater_idx");
    // Base index: two keywords over a small tree.
    source_.AddPosting("apple", Id("0.0.1"));
    source_.AddPosting("apple", Id("0.2.0"));
    source_.AddPosting("banana", Id("0.1"));
    source_.AddPosting("banana", Id("0.2.1"));
    // Widen the level table so updates have room (CanEncode headroom).
    source_.AddPosting("zzfiller", Id("0.7.7.7"));
    Result<std::unique_ptr<DiskIndex>> built =
        DiskIndex::Build(source_, prefix_);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }

  void TearDown() override {
    for (const char* suffix : {".il", ".scan", ".dict"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  // Reads back one keyword list via a freshly opened index.
  std::vector<DeweyId> Postings(const std::string& keyword) {
    Result<std::unique_ptr<DiskIndex>> index = DiskIndex::Open(prefix_);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    std::vector<DeweyId> out;
    const DiskIndex::TermInfo* info = (*index)->FindTerm(keyword);
    if (info == nullptr) return out;
    Result<DiskIndex::PostingCursor> cursor = (*index)->OpenPostings(info->id);
    EXPECT_TRUE(cursor.ok());
    DeweyId id;
    while (cursor->Next(&id)) out.push_back(id);
    XKS_EXPECT_OK(cursor->status());
    // The Indexed Lookup layout must agree with the scan layout.
    DeweyId got;
    DeweyId probe({0});
    Result<bool> rm = (*index)->RightMatch(info->id, probe, &got);
    EXPECT_TRUE(rm.ok());
    if (!out.empty()) {
      EXPECT_TRUE(*rm);
      EXPECT_EQ(got, out.front());
    }
    return out;
  }

  std::string prefix_;
  InvertedIndex source_;
};

TEST_F(DiskIndexUpdaterTest, AddPostingAppears) {
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.1.5")));
    EXPECT_EQ((*updater)->Frequency("apple"), 3u);
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_EQ(Strings(Postings("apple")),
            (std::vector<std::string>{"0.0.1", "0.1.5", "0.2.0"}));
}

TEST_F(DiskIndexUpdaterTest, AddIsIdempotent) {
  Result<std::unique_ptr<DiskIndexUpdater>> updater =
      DiskIndexUpdater::Open(prefix_);
  ASSERT_TRUE(updater.ok());
  XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.0.1")));  // existing
  EXPECT_EQ((*updater)->Frequency("apple"), 2u);
  XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.3")));
  XKS_ASSERT_OK((*updater)->AddPosting("apple", Id("0.3")));  // repeat
  EXPECT_EQ((*updater)->Frequency("apple"), 3u);
  XKS_ASSERT_OK((*updater)->Finish());
  EXPECT_EQ(Postings("apple").size(), 3u);
}

TEST_F(DiskIndexUpdaterTest, NewKeywordGetsFreshTerm) {
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    XKS_ASSERT_OK((*updater)->AddPosting("cherry", Id("0.4")));
    XKS_ASSERT_OK((*updater)->AddPosting("cherry", Id("0.0.3")));
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_EQ(Strings(Postings("cherry")),
            (std::vector<std::string>{"0.0.3", "0.4"}));
  // Existing keywords are untouched.
  EXPECT_EQ(Postings("apple").size(), 2u);
}

TEST_F(DiskIndexUpdaterTest, RemovePostingDisappears) {
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    XKS_ASSERT_OK((*updater)->RemovePosting("apple", Id("0.0.1")));
    EXPECT_TRUE(
        (*updater)->RemovePosting("apple", Id("0.9.9")).IsNotFound());
    EXPECT_TRUE((*updater)->RemovePosting("nope", Id("0.1")).IsNotFound());
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_EQ(Strings(Postings("apple")), (std::vector<std::string>{"0.2.0"}));
}

TEST_F(DiskIndexUpdaterTest, RemovingEveryPostingDropsTheTerm) {
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    XKS_ASSERT_OK((*updater)->RemovePosting("banana", Id("0.1")));
    XKS_ASSERT_OK((*updater)->RemovePosting("banana", Id("0.2.1")));
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_TRUE(Postings("banana").empty());
  Result<std::unique_ptr<DiskIndex>> index = DiskIndex::Open(prefix_);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->FindTerm("banana"), nullptr);
}

TEST_F(DiskIndexUpdaterTest, OutOfRangeIdRejected) {
  Result<std::unique_ptr<DiskIndexUpdater>> updater =
      DiskIndexUpdater::Open(prefix_);
  ASSERT_TRUE(updater.ok());
  // Component 999999 cannot fit the level table built from the corpus.
  EXPECT_TRUE(
      (*updater)->AddPosting("apple", Id("0.999999")).IsInvalidArgument());
}

TEST_F(DiskIndexUpdaterTest, ManyUpdatesSplitBlocksAndStayConsistent) {
  // Push enough postings through one keyword to force several block
  // splits and re-keyings; mirror everything in an in-memory reference.
  std::vector<DeweyId> reference = source_.Materialize("apple");
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix_);
    ASSERT_TRUE(updater.ok());
    Rng rng(2024);
    for (int i = 0; i < 3000; ++i) {
      const DeweyId id({0, static_cast<uint32_t>(rng.Uniform(8)),
                        static_cast<uint32_t>(rng.Uniform(8)),
                        static_cast<uint32_t>(rng.Uniform(8))});
      if (rng.Bernoulli(0.25) && !reference.empty()) {
        const size_t pick = rng.Uniform(reference.size());
        XKS_ASSERT_OK((*updater)->RemovePosting("apple", reference[pick]));
        reference.erase(reference.begin() + static_cast<long>(pick));
      } else {
        const Status st = (*updater)->AddPosting("apple", id);
        XKS_ASSERT_OK(st);
        auto pos = std::lower_bound(reference.begin(), reference.end(), id);
        if (pos == reference.end() || *pos != id) reference.insert(pos, id);
      }
    }
    EXPECT_EQ((*updater)->Frequency("apple"), reference.size());
    XKS_ASSERT_OK((*updater)->Finish());
  }
  EXPECT_EQ(Strings(Postings("apple")), Strings(reference));
}

TEST_F(DiskIndexUpdaterTest, UpdatedIndexAnswersQueriesCorrectly) {
  // End to end: mutate the school index, reopen with DiskSearcher, and
  // check the SLCA result tracks the change.
  const std::string prefix = ::testing::TempDir() + "/updater_school";
  Document doc = BuildSchoolDocument();
  InvertedIndex index = InvertedIndex::Build(doc);
  {
    Result<std::unique_ptr<DiskIndex>> built = DiskIndex::Build(index, prefix);
    ASSERT_TRUE(built.ok());
  }
  {
    // Pretend a new document edit put "ben" on the Robotics project lead
    // (node 0.2.0.1.0 is the text "John" under the lead element; use its
    // sibling position 0.2.0.2 as a fresh text node's id).
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix);
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    XKS_ASSERT_OK((*updater)->AddPosting("ben", Id("0.2.0.2")));
    XKS_ASSERT_OK((*updater)->Finish());
  }
  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix);
  ASSERT_TRUE(searcher.ok());
  Result<SearchResult> result = (*searcher)->Search({"john", "ben"});
  ASSERT_TRUE(result.ok());
  // The Robotics project (0.2.0) now contains both names: a 4th answer.
  EXPECT_EQ(Strings(result->nodes),
            (std::vector<std::string>{"0.0.0", "0.0.1", "0.1.0.1", "0.2.0"}));
  for (const char* suffix : {".il", ".scan", ".dict"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST_F(DiskIndexUpdaterTest, InMemoryRejected) {
  DiskIndexOptions mem;
  mem.in_memory = true;
  EXPECT_TRUE(DiskIndexUpdater::Open(prefix_, mem).status().IsInvalidArgument());
}

}  // namespace
}  // namespace xksearch
