#include "engine/xksearch.h"

#include <string>
#include <vector>

#include <algorithm>

#include "gen/school.h"
#include "gtest/gtest.h"
#include "slca/brute_force.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Strings;

XKSearch::BuildOptions WithMemDisk() {
  XKSearch::BuildOptions options;
  options.build_disk_index = true;
  options.disk.in_memory = true;
  return options;
}

TEST(XKSearchTest, BuildFromXmlAndSearch) {
  Result<std::unique_ptr<XKSearch>> system = XKSearch::BuildFromXml(
      "<lib><book><title>databases</title><author>smith</author></book>"
      "<book><title>compilers</title><author>smith</author></book></lib>");
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  Result<SearchResult> result = (*system)->Search({"databases", "smith"});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->nodes.size(), 1u);
  // The first book contains both.
  EXPECT_EQ(result->nodes[0], Id("0.0"));
}

TEST(XKSearchTest, PaperWalkthroughOnSchool) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  Result<SearchResult> result = (*system)->Search({"John", "Ben"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes.size(), 3u);
  // Results in document order; snippets render the answer subtrees.
  for (const DeweyId& node : result->nodes) {
    Result<std::string> snippet = (*system)->Snippet(node);
    ASSERT_TRUE(snippet.ok());
    EXPECT_NE(snippet->find("John"), std::string::npos);
    EXPECT_NE(snippet->find("Ben"), std::string::npos);
  }
}

TEST(XKSearchTest, KeywordsAreNormalized) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  Result<SearchResult> lower = (*system)->Search({"john", "ben"});
  Result<SearchResult> mixed = (*system)->Search({"JOHN", "Ben!"});
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(Strings(lower->nodes), Strings(mixed->nodes));
  EXPECT_EQ((*system)->Frequency("JOHN"), 4u);
}

TEST(XKSearchTest, MissingKeywordGivesEmptyResult) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  Result<SearchResult> result = (*system)->Search({"john", "zzzzz"});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->nodes.empty());
}

TEST(XKSearchTest, InvalidQueriesRejected) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  EXPECT_TRUE((*system)->Search({}).status().IsInvalidArgument());
  EXPECT_TRUE((*system)->Search({"!!!"}).status().IsInvalidArgument());
}

TEST(XKSearchTest, AutoSelectionFollowsFrequencyRatio) {
  // john:4 vs a word with frequency 1 -> ratio 4 < 8 default? Use a
  // custom threshold to exercise both sides.
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  SearchOptions low;
  low.auto_ratio_threshold = 2.0;
  Result<SearchResult> r1 = (*system)->Search({"john", "robotics"}, low);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->algorithm, SlcaAlgorithm::kIndexedLookupEager);

  SearchOptions high;
  high.auto_ratio_threshold = 100.0;
  Result<SearchResult> r2 = (*system)->Search({"john", "ben"}, high);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->algorithm, SlcaAlgorithm::kScanEager);
}

TEST(XKSearchTest, ExplicitAlgorithmChoiceHonored) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  for (auto [choice, expected] :
       {std::pair{AlgorithmChoice::kIndexedLookupEager,
                  SlcaAlgorithm::kIndexedLookupEager},
        std::pair{AlgorithmChoice::kScanEager, SlcaAlgorithm::kScanEager},
        std::pair{AlgorithmChoice::kStack, SlcaAlgorithm::kStack}}) {
    SearchOptions options;
    options.algorithm = choice;
    Result<SearchResult> result = (*system)->Search({"john", "ben"}, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->algorithm, expected);
    EXPECT_EQ(result->nodes.size(), 3u);
  }
}

TEST(XKSearchTest, KeywordsReorderedByFrequency) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  // mary (2) is rarer than john (4).
  Result<SearchResult> result = (*system)->Search({"john", "mary"});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->keywords.size(), 2u);
  EXPECT_EQ(result->keywords[0], "mary");
  EXPECT_EQ(result->keywords[1], "john");
}

TEST(XKSearchTest, DiskAndMemoryAgree) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument(), WithMemDisk());
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  for (auto choice : {AlgorithmChoice::kIndexedLookupEager,
                      AlgorithmChoice::kScanEager, AlgorithmChoice::kStack}) {
    SearchOptions mem;
    mem.algorithm = choice;
    SearchOptions disk = mem;
    disk.use_disk_index = true;
    Result<SearchResult> m = (*system)->Search({"john", "ben"}, mem);
    Result<SearchResult> d = (*system)->Search({"john", "ben"}, disk);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(Strings(m->nodes), Strings(d->nodes));
  }
}

TEST(XKSearchTest, DiskQueriesCountPageReads) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument(), WithMemDisk());
  ASSERT_TRUE(system.ok());
  XKS_ASSERT_OK((*system)->disk_index()->DropCaches());
  SearchOptions disk;
  disk.use_disk_index = true;
  Result<SearchResult> cold = (*system)->Search({"john", "ben"}, disk);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold.ValueOrDie().stats.page_reads, 0u);
  Result<SearchResult> hot = (*system)->Search({"john", "ben"}, disk);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot.ValueOrDie().stats.page_reads, 0u);
}

TEST(XKSearchTest, UseDiskWithoutBuildingFails) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  SearchOptions disk;
  disk.use_disk_index = true;
  EXPECT_TRUE(
      (*system)->Search({"john"}, disk).status().IsInvalidArgument());
}

TEST(XKSearchTest, AllLcaMode) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  SearchOptions lca;
  lca.semantics = Semantics::kAllLca;
  Result<SearchResult> all = (*system)->Search({"john", "ben"}, lca);
  ASSERT_TRUE(all.ok());
  Result<std::vector<DeweyId>> expected =
      OracleAllLca((*system)->document(), (*system)->index(), {"john", "ben"});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Strings(all->nodes), Strings(*expected));
}

TEST(XKSearchTest, StreamingDeliversInOrder) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  std::vector<DeweyId> streamed;
  Result<SearchResult> result = (*system)->SearchStreaming(
      {"john", "ben"}, {}, [&](const DeweyId& id) { streamed.push_back(id); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(streamed.size(), 3u);
  EXPECT_TRUE(std::is_sorted(streamed.begin(), streamed.end()));
}

TEST(XKSearchTest, SnippetTruncation) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  Result<std::string> full = (*system)->Snippet(Id("0"));
  ASSERT_TRUE(full.ok());
  Result<std::string> truncated = (*system)->Snippet(Id("0"), 50);
  ASSERT_TRUE(truncated.ok());
  EXPECT_LT(truncated->size(), full->size());
  EXPECT_NE(truncated->find("<truncated/>"), std::string::npos);
  EXPECT_TRUE((*system)->Snippet(Id("0.99")).status().IsNotFound());
}

TEST(XKSearchTest, ExplainReportsPlanAndCosts) {
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(BuildSchoolDocument());
  ASSERT_TRUE(system.ok());
  Result<std::string> report = (*system)->Explain({"john", "mary"});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Frequency-ordered lists, chosen algorithm, prediction and counters.
  EXPECT_NE(report->find("mary(|S1|=2)"), std::string::npos) << *report;
  EXPECT_NE(report->find("john(|S2|=4)"), std::string::npos);
  EXPECT_NE(report->find("algorithm:"), std::string::npos);
  EXPECT_NE(report->find("predicted (Table 1)"), std::string::npos);
  EXPECT_NE(report->find("match_ops = 2(k-1)|S1| = 4"), std::string::npos);
  EXPECT_NE(report->find("measured:"), std::string::npos);
  EXPECT_NE(report->find("results:"), std::string::npos);

  SearchOptions stack;
  stack.algorithm = AlgorithmChoice::kStack;
  Result<std::string> stack_report =
      (*system)->Explain({"john", "mary"}, stack);
  ASSERT_TRUE(stack_report.ok());
  EXPECT_NE(stack_report->find("sum|Si| = 6"), std::string::npos)
      << *stack_report;
}

TEST(XKSearchTest, BuildRejectsBadXml) {
  EXPECT_TRUE(XKSearch::BuildFromXml("<oops>").status().IsParseError());
}

TEST(XKSearchTest, FileDiskIndexRequiresPrefix) {
  XKSearch::BuildOptions options;
  options.build_disk_index = true;  // file mode but no prefix
  EXPECT_TRUE(XKSearch::BuildFromDocument(BuildSchoolDocument(), options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace xksearch
